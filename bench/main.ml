(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§IV) on the simulated 48-core machine.

     fig2   execution time vs chunk size (linear regression kernel)
     tab1   measured vs modeled FS overhead % — heat diffusion
     tab2   measured vs modeled FS overhead % — DFT
     tab3   measured vs modeled FS overhead % — linear regression
     tab4   predicted vs modeled FS cases — heat diffusion
     tab5   predicted vs modeled FS cases — DFT
     tab6   predicted vs modeled FS cases — linear regression
     fig6   FS cases grow linearly with chunk runs
     fig8   measured/modeled/predicted % vs threads — heat
     fig9   measured/modeled/predicted % vs threads — DFT
     calib  the fs_cost_factor calibration fit
     ablate stack-policy / invalidation / associativity / predictor-depth
     compare  compile-time model vs runtime trace detector
     serve  analysis-service cache: cold vs warm latency, batch scaling
     micro  bechamel micro-benchmarks (one per table/figure pipeline)

   Usage: main.exe [--quick] [--only ID] [--no-micro] [--jobs N]

   "Measured" columns come from the MESI execution simulator (the repo's
   stand-in for the paper's hardware testbed; see DESIGN.md), so absolute
   seconds differ from the paper — shapes and model-vs-measured agreement
   are the reproduction targets.  Paper values are printed alongside where
   the paper reports them.

   Independent configuration sweeps (per-thread-count studies, chunk
   sweeps) run through Fsmodel.Par_sweep, so they spread over OCaml
   domains when more than one is available; --jobs pins the count
   (--domains is the older spelling, kept as an alias; results are
   identical at any value).  Wall-clock per section and the headline FS
   counts are also written to BENCH.json (schema: DESIGN.md §12). *)

let quick = ref false
let only : string option ref = ref None
let micro_enabled = ref true
let domains = ref (Fsmodel.Par_sweep.recommended_domains ())

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--only" :: id :: rest ->
        only := Some id;
        parse rest
    | "--no-micro" :: rest ->
        micro_enabled := false;
        parse rest
    | (("--jobs" | "-j" | "--domains") as flag) :: n :: rest ->
        (match int_of_string_opt n with
        | Some d when d >= 1 -> domains := d
        | _ ->
            Printf.eprintf "%s expects a positive integer, got %s\n" flag n;
            exit 2);
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "unknown argument %s\n\
           usage: main.exe [--quick] [--only ID] [--no-micro] [--jobs N]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let par_map f xs = Fsmodel.Par_sweep.map ~domains:!domains f xs

let thread_set () =
  if !quick then [ 2; 8; 24; 48 ] else [ 2; 4; 8; 16; 24; 32; 40; 48 ]

let heat_kernel () =
  if !quick then Kernels.Heat.kernel ~rows:10 ~cols:7682 ()
  else Kernels.Heat.kernel ()

let dft_kernel () =
  if !quick then Kernels.Dft.kernel ~freqs:8 ~samples:7680 ()
  else Kernels.Dft.kernel ()

let linreg_kernel () =
  if !quick then Kernels.Linreg_kernel.kernel ~nacc:1200 ~m:256 ()
  else Kernels.Linreg_kernel.kernel ()

let section_times : (string * float) list ref = ref []

let section id title f =
  let run =
    match !only with None -> true | Some wanted -> wanted = id
  in
  if run then begin
    Printf.printf "\n== %s: %s ==\n\n" id title;
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    section_times := (id, dt) :: !section_times;
    Printf.printf "\n[%s done in %.1fs]\n" id dt
  end

let pct = Fsmodel.Report.pct
let kcount = Fsmodel.Report.kcount

(* ------------------------------------------------------------------ *)
(* Shared per-kernel study: measured + full model + prediction at every
   team size (reused by tab1-6 and fig8/9).                            *)
(* ------------------------------------------------------------------ *)

type row = {
  threads : int;
  meas : Execsim.Run.comparison;
  full : Fsmodel.Overhead_percent.analysis;
  pred : Fsmodel.Overhead_percent.analysis;
}

let study_cache : (string, row list) Hashtbl.t = Hashtbl.create 4

let study (kernel : Kernels.Kernel.t) =
  match Hashtbl.find_opt study_cache kernel.Kernels.Kernel.name with
  | Some rows -> rows
  | None ->
      let checked = Kernels.Kernel.parse kernel in
      let rows =
        par_map
          (fun threads ->
            let meas = Execsim.Run.measured_fs_percent ~threads kernel in
            let full =
              Fsmodel.Overhead_percent.analyze ~threads
                ~fs_chunk:kernel.Kernels.Kernel.fs_chunk
                ~nfs_chunk:kernel.Kernels.Kernel.nfs_chunk
                ~func:kernel.Kernels.Kernel.func checked
            in
            let pred =
              Fsmodel.Overhead_percent.analyze
                ~mode:
                  (Fsmodel.Overhead_percent.Predicted
                     kernel.Kernels.Kernel.pred_runs)
                ~threads ~fs_chunk:kernel.Kernels.Kernel.fs_chunk
                ~nfs_chunk:kernel.Kernels.Kernel.nfs_chunk
                ~func:kernel.Kernels.Kernel.func checked
            in
            { threads; meas; full; pred })
          (thread_set ())
      in
      Hashtbl.replace study_cache kernel.Kernels.Kernel.name rows;
      rows

(* paper-reported modeled percentages (Tables I-III), by thread count *)
let paper_pct = function
  | `Heat -> [ (2, 6.9); (4, 6.9); (8, 6.9); (16, 7.0); (24, 7.1); (32, 7.2);
               (40, 7.2); (48, 7.2) ]
  | `Dft -> [ (2, 32.0); (4, 31.6); (8, 31.5); (16, 33.2); (24, 32.8);
              (32, 35.6); (40, 36.7); (48, 35.8) ]
  | `Linreg -> [ (2, 16.1); (4, 14.7); (8, 9.0); (16, 4.9); (24, 3.3);
                 (32, 2.5); (40, 2.0); (48, 1.7) ]

let paper_pred_pct = function
  | `Heat -> [ (2, 6.8); (4, 6.8); (8, 6.8); (16, 6.9); (24, 6.9); (32, 6.9);
               (40, 6.9); (48, 7.0) ]
  | `Dft -> [ (2, 32.4); (4, 32.8); (8, 32.8); (16, 32.9); (24, 31.8);
              (32, 34.2); (40, 35.1); (48, 34.1) ]
  | `Linreg -> []

let paper_col table threads =
  match List.assoc_opt threads table with
  | Some v -> pct v
  | None -> "-"

(* ------------------------------------------------------------------ *)
(* fig2                                                                *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  let threads = 8 in
  let kernel =
    if !quick then Kernels.Linreg_kernel.kernel ~nacc:480 ~m:128 ()
    else Kernels.Linreg_kernel.kernel ~nacc:2400 ~m:256 ()
  in
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", threads) ]
  in
  Printf.printf
    "Execution time of the linear-regression kernel vs chunk size (%d threads).\n\
     Paper Fig. 2 shape: time falls steeply as the chunk grows from 1,\n\
     flattening around chunk ~10-30 (about 30%% total improvement).\n\n"
    threads;
  let chunks = [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 15; 20; 25; 30 ] in
  (* every chunk is an independent (simulator, predictor) pair, so sweep
     them in parallel and compute the vs-chunk-1 column afterwards *)
  let points =
    par_map
      (fun chunk ->
        let m = Execsim.Run.measure ~chunk ~threads kernel in
        let cfg =
          { (Fsmodel.Model.default_config ~threads ()) with
            Fsmodel.Model.chunk = Some chunk }
        in
        let p = Fsmodel.Predict.predict ~runs:10 cfg ~nest ~checked in
        (chunk, m.Execsim.Run.seconds, p.Fsmodel.Predict.predicted_fs))
      chunks
  in
  let base =
    match points with (_, s, _) :: _ -> Some s | [] -> None
  in
  let rows =
    List.map
      (fun (chunk, seconds, predicted_fs) ->
        let speedup =
          match base with
          | Some b when seconds > 0. ->
              Printf.sprintf "%.1f%%" (100. *. (b -. seconds) /. b)
          | _ -> "-"
        in
        [ string_of_int chunk;
          Printf.sprintf "%.5f" seconds;
          speedup;
          kcount predicted_fs ])
      points
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "chunk"; "simulated time (s)"; "vs chunk 1"; "modeled FS cases" ]
       rows)

(* ------------------------------------------------------------------ *)
(* tab1-3                                                              *)
(* ------------------------------------------------------------------ *)

let overhead_table which (kernel : Kernels.Kernel.t) =
  Printf.printf
    "FS overhead as %% of execution time: measured on the simulated machine\n\
     (chunk %d = FS case, chunk %d = non-FS case) vs the compile-time model.\n\
     The paper's modeled column is shown for reference (different substrate,\n\
     different absolute numbers; the shape is the comparison target).\n\n"
    kernel.Kernels.Kernel.fs_chunk kernel.Kernels.Kernel.nfs_chunk;
  let rows =
    List.map
      (fun r ->
        [ string_of_int r.threads;
          Printf.sprintf "%.4f" r.meas.Execsim.Run.fs.Execsim.Run.seconds;
          Printf.sprintf "%.4f" r.meas.Execsim.Run.nfs.Execsim.Run.seconds;
          pct r.meas.Execsim.Run.percent;
          pct r.full.Fsmodel.Overhead_percent.percent;
          paper_col (paper_pct which) r.threads ])
      (study kernel)
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "threads"; "T_fs (s)"; "T_nfs (s)"; "measured FS";
           "modeled FS"; "paper modeled" ]
       rows)

let tab1 () = overhead_table `Heat (heat_kernel ())
let tab2 () = overhead_table `Dft (dft_kernel ())

let tab3 () =
  overhead_table `Linreg (linreg_kernel ());
  Printf.printf
    "\nPaper Table III note reproduced: the kernel is parallelized at the\n\
     outermost level with an inner trip of M/num_threads, so the modeled\n\
     FS-case count decays ~1/threads (see tab6) while the measured effect\n\
     stays small — modeled and measured diverge, unlike tab1/tab2.\n"

(* ------------------------------------------------------------------ *)
(* tab4-6                                                              *)
(* ------------------------------------------------------------------ *)

let predict_table which (kernel : Kernels.Kernel.t) =
  Printf.printf
    "Predicted (linear regression over %d chunk runs, §III-E) vs fully\n\
     modeled FS cases, for the FS chunk (%d) and the non-FS chunk (%d).\n\n"
    kernel.Kernels.Kernel.pred_runs kernel.Kernels.Kernel.fs_chunk
    kernel.Kernels.Kernel.nfs_chunk;
  let rows =
    List.map
      (fun r ->
        [ string_of_int r.threads;
          kcount r.pred.Fsmodel.Overhead_percent.n_fs;
          kcount r.pred.Fsmodel.Overhead_percent.n_nfs;
          pct r.pred.Fsmodel.Overhead_percent.percent;
          kcount r.full.Fsmodel.Overhead_percent.n_fs;
          kcount r.full.Fsmodel.Overhead_percent.n_nfs;
          pct r.full.Fsmodel.Overhead_percent.percent;
          (match paper_pred_pct which with
          | [] -> "-"
          | t -> paper_col t r.threads) ])
      (study kernel)
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "threads"; "pred FS"; "pred nFS"; "pred %"; "model FS";
           "model nFS"; "model %"; "paper pred %" ]
       rows);
  (* prediction quality summary *)
  let errs =
    List.filter_map
      (fun r ->
        let f = r.full.Fsmodel.Overhead_percent.n_fs in
        if f = 0 then None
        else
          Some
            (100.
            *. Float.abs
                 (float_of_int (r.pred.Fsmodel.Overhead_percent.n_fs - f))
            /. float_of_int f))
      (study kernel)
  in
  if errs <> [] then
    Printf.printf "\nmean |predicted-modeled| error on N_fs: %.1f%%\n"
      (List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs))

let tab4 () = predict_table `Heat (heat_kernel ())
let tab5 () = predict_table `Dft (dft_kernel ())

let tab6 () =
  predict_table `Linreg (linreg_kernel ());
  Printf.printf
    "\nPaper Table VI shape reproduced when the modeled FS count decays\n\
     roughly as 1/threads down the column (paper: 86,315K at 2 threads to\n\
     7,987K at 48).\n"

(* ------------------------------------------------------------------ *)
(* fig6                                                                *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let kernel =
    if !quick then Kernels.Heat.kernel ~rows:10 ~cols:1922 ()
    else Kernels.Heat.kernel ~rows:10 ~cols:7682 ()
  in
  let threads = 8 in
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", threads) ]
  in
  let cfg = Fsmodel.Model.default_config ~threads () in
  let r = Fsmodel.Model.run ~record_samples:true cfg ~nest ~checked in
  let samples = Array.of_list r.Fsmodel.Model.samples in
  let n = Array.length samples in
  Printf.printf
    "Cumulative FS cases vs chunk runs (heat, %d threads, chunk 1).\n\
     Paper Fig. 6: the relation is linear, which justifies the\n\
     linear-regression predictor.\n\n"
    threads;
  let picks =
    List.filter (fun i -> i < n)
      [ 0; n / 8; n / 4; (3 * n) / 8; n / 2; (5 * n) / 8; (3 * n) / 4;
        (7 * n) / 8; n - 1 ]
  in
  print_endline
    (Fsmodel.Report.table ~header:[ "chunk run"; "cumulative FS cases" ]
       (List.map
          (fun i ->
            let s = samples.(i) in
            [ string_of_int s.Fsmodel.Model.chunk_run;
              string_of_int s.Fsmodel.Model.cumulative_fs ])
          (List.sort_uniq compare picks)));
  (* linearity: R^2 of the least-squares fit *)
  let pts =
    Array.to_list
      (Array.map
         (fun s ->
           ( float_of_int s.Fsmodel.Model.chunk_run,
             float_of_int s.Fsmodel.Model.cumulative_fs ))
         samples)
  in
  let line = Fsmodel.Linreg.fit_ols pts in
  let rms = Fsmodel.Linreg.residual_rms line pts in
  let mean_y =
    List.fold_left (fun a (_, y) -> a +. y) 0. pts /. float_of_int n
  in
  Printf.printf "\nfit: %s; residual RMS = %.0f (%.3f%% of mean)\n"
    (Format.asprintf "%a" Fsmodel.Linreg.pp line)
    rms
    (100. *. rms /. Float.max 1. mean_y)

(* ------------------------------------------------------------------ *)
(* fig8/9                                                              *)
(* ------------------------------------------------------------------ *)

let fig89 which (kernel : Kernels.Kernel.t) =
  Printf.printf
    "FS effect (%% of execution time) by team size: measurement vs the full\n\
     model vs the linear-regression prediction (paper Figs. 8/9 summary).\n\n";
  let rows =
    List.map
      (fun r ->
        [ string_of_int r.threads;
          pct r.meas.Execsim.Run.percent;
          pct r.full.Fsmodel.Overhead_percent.percent;
          pct r.pred.Fsmodel.Overhead_percent.percent;
          paper_col (paper_pct which) r.threads ])
      (study kernel)
  in
  print_endline
    (Fsmodel.Report.table
       ~header:[ "threads"; "measured"; "modeled"; "predicted"; "paper modeled" ]
       rows)

let fig8 () = fig89 `Heat (heat_kernel ())
let fig9 () = fig89 `Dft (dft_kernel ())

(* ------------------------------------------------------------------ *)
(* calib                                                               *)
(* ------------------------------------------------------------------ *)

let calib () =
  Printf.printf
    "Calibration of fs_cost_factor (currently %.2f): for each inner-parallel\n\
     configuration, the factor that would make the modeled %% equal the\n\
     simulator's measured %%.  The default is the geometric mean over heat\n\
     and DFT.\n\n"
    Costmodel.Total_cost.default_fs_cost_factor;
  let implied = ref [] in
  List.iter
    (fun (kernel : Kernels.Kernel.t) ->
      List.iter
        (fun r ->
          let m = r.meas.Execsim.Run.percent /. 100. in
          let p = r.full.Fsmodel.Overhead_percent.percent /. 100. in
          if m > 0.001 && m < 0.999 && p > 0.001 && p < 0.999 then begin
            (* percent = F/(B+F); invert both to F/B ratios *)
            let ratio_meas = m /. (1. -. m) in
            let ratio_model = p /. (1. -. p) in
            let f =
              Costmodel.Total_cost.default_fs_cost_factor *. ratio_meas
              /. ratio_model
            in
            implied := f :: !implied;
            Printf.printf "%-6s T=%-2d measured=%s modeled=%s implied factor %.2f\n"
              kernel.Kernels.Kernel.name r.threads
              (pct r.meas.Execsim.Run.percent)
              (pct r.full.Fsmodel.Overhead_percent.percent)
              f
          end)
        (study kernel))
    [ heat_kernel (); dft_kernel () ];
  match !implied with
  | [] -> print_endline "no usable configurations"
  | fs ->
      let geomean =
        exp
          (List.fold_left (fun a f -> a +. log f) 0. fs
          /. float_of_int (List.length fs))
      in
      Printf.printf "\ngeometric mean of implied factors: %.2f\n" geomean

(* ------------------------------------------------------------------ *)
(* ablate                                                              *)
(* ------------------------------------------------------------------ *)

let ablate () =
  let threads = 8 in
  (* DFT sized so each thread's touched lines exceed the L1 stack but not
     an unbounded one: the capacity bound of step 3 then matters, because
     stale modified lines from earlier sequential iterations would
     otherwise inflate the count. *)
  let kernel = Kernels.Dft.kernel ~freqs:6 ~samples:4096 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:"dft"
      ~params:[ ("num_threads", threads) ]
  in
  let base = Fsmodel.Model.default_config ~threads () in
  let run cfg = (Fsmodel.Model.run cfg ~nest ~checked).Fsmodel.Model.fs_cases in
  Printf.printf
    "(a) Stack-distance policy (DFT, %d threads, chunk 1): the LRU capacity\n\
     bound (paper step 3) prevents stale-line overcounting.\n\n" threads;
  par_map
    (fun (name, cfg) -> (name, run cfg))
    [
      ("L1-sized stack (paper)", base);
      ("L2-sized stack", { base with Fsmodel.Model.stack = Fsmodel.Model.Level_l2 });
      ("64-line stack", { base with Fsmodel.Model.stack = Fsmodel.Model.Lines 64 });
      ("unbounded stack", { base with Fsmodel.Model.stack = Fsmodel.Model.Unbounded });
      ("L1 + write-invalidate",
       { base with Fsmodel.Model.invalidate_on_write = true });
    ]
  |> List.iter (fun (name, fs) -> Printf.printf "  %-28s %9d FS cases\n" name fs);
  (* (b) predictor depth, on heat whose per-run FS count has a small
     warm-up transient (the first touch of every line), so depth matters *)
  let hk = Kernels.Heat.kernel ~rows:10 ~cols:3842 () in
  let hchecked = Kernels.Kernel.parse hk in
  let hnest =
    Loopir.Lower.lower hchecked ~func:"heat_step"
      ~params:[ ("num_threads", threads) ]
  in
  let hfull =
    (Fsmodel.Model.run base ~nest:hnest ~checked:hchecked).Fsmodel.Model.fs_cases
  in
  Printf.printf
    "\n(b) Predictor depth (heat, %d threads): relative N_fs error vs chunk\n\
     runs evaluated (full model: %d cases).\n\n" threads hfull;
  List.iter
    (fun runs ->
      let p =
        Fsmodel.Predict.predict ~runs base ~nest:hnest ~checked:hchecked
      in
      Printf.printf "  %3d runs -> %9d (%.2f%% error, %dx less work)\n" runs
        p.Fsmodel.Predict.predicted_fs
        (100.
        *. Float.abs (float_of_int (p.Fsmodel.Predict.predicted_fs - hfull))
        /. float_of_int (max 1 hfull))
        (p.Fsmodel.Predict.full_iterations
        / max 1 p.Fsmodel.Predict.iterations_evaluated))
    [ 2; 5; 10; 20; 50 ];
  (* (c) fully associative vs set associative (paper §III-C), replayed on a
     trace with real temporal reuse (linreg: hot accumulator line + a
     cyclically re-read point array) *)
  Printf.printf
    "\n(c) Fully-associative LRU (the model's assumption) vs the real L1\n\
     set-associative geometry, replaying one thread's line trace:\n\n";
  (* 8192 points * 16B = 128KB of point data cycled through a 64KB L1:
     real capacity pressure, where replacement policies could diverge *)
  let lr_kernel = Kernels.Linreg_kernel.kernel ~nacc:16 ~m:16384 () in
  let lr_checked = Kernels.Kernel.parse lr_kernel in
  let trace = ref [] in
  let sink =
    {
      Execsim.Interp.null_sink with
      Execsim.Interp.mem_access =
        (fun ~tid ~addr ~size:_ ~write:_ ->
          if tid = 0 then trace := (addr / 64) :: !trace);
    }
  in
  let it =
    (* two threads: each unit then streams 128KB of points through the
       64KB L1 *)
    Execsim.Interp.create ~threads:2 ~chunk_override:1 ~sink lr_checked
  in
  Execsim.Interp.exec it ~func:"init";
  trace := [];
  Execsim.Interp.exec it ~func:"linear_regression";
  let lines = List.rev !trace in
  let arch = Archspec.Arch.paper_machine in
  let full_assoc = Cachesim.Lru_stack.create
      ~capacity:(Archspec.Cache_geom.lines arch.Archspec.Arch.l1) in
  let set_assoc = Cachesim.Set_assoc.create arch.Archspec.Arch.l1 in
  let fa_misses = ref 0 and sa_misses = ref 0 in
  List.iter
    (fun line ->
      if not (Cachesim.Lru_stack.mem full_assoc line) then incr fa_misses;
      ignore (Cachesim.Lru_stack.access full_assoc line ());
      match Cachesim.Set_assoc.access set_assoc line with
      | `Miss _ -> incr sa_misses
      | `Hit -> ())
    lines;
  Printf.printf
    "  %d accesses: fully-assoc misses %d, %d-way set-assoc misses %d (%.1f%% apart)\n"
    (List.length lines) !fa_misses
    arch.Archspec.Arch.l1.Archspec.Cache_geom.associativity !sa_misses
    (100.
    *. Float.abs (float_of_int (!sa_misses - !fa_misses))
    /. float_of_int (max 1 !fa_misses));
  (* (d) schedule kinds on the simulator: false sharing is a property of
     which iterations land next to each other, so dynamic self-scheduling
     with a small chunk false-shares like static,1 while line-sized chunks
     cure both *)
  Printf.printf
    "\n(d) Simulated FS misses by schedule kind (vector update, %d threads):\n\n"
    threads;
  par_map
    (fun sched ->
      let kernel =
        {
          Kernels.Kernel.name = "sched-" ^ sched;
          description = "";
          source =
            Printf.sprintf
              {|#define N 30720
double x[N];
double y[N];
void init(void) {
  int i;
  for (i = 0; i < N; i++) { x[i] = 1.0 * i; y[i] = 0.0; }
}
void f(void) {
  int i;
  #pragma omp parallel for private(i) schedule(%s)
  for (i = 0; i < N; i++) {
    y[i] = 2.5 * x[i] + 1.0;
  }
}
|}
              sched;
          func = "f";
          init_func = Some "init";
          fs_chunk = 1;
          nfs_chunk = 8;
          pred_runs = 10;
          parametric = None;
        }
      in
      let m = Execsim.Run.measure ~threads kernel in
      (sched, m))
    [ "static,1"; "static,8"; "static"; "dynamic,1"; "dynamic,8"; "guided" ]
  |> List.iter (fun (sched, m) ->
         Printf.printf "  schedule(%-9s) %6d FS misses, wall %.5f s\n" sched
           m.Execsim.Run.stats.Cachesim.Stats.coherence_false
           m.Execsim.Run.seconds);
  (* (e) contention extension (§VI): shared-cache + bandwidth terms *)
  Printf.printf
    "\n(e) Contention extension (paper §VI future work), streaming vector\n\
     update, Eq. 1 share taken by the new term:\n\n";
  let sk = Kernels.Saxpy.kernel () in
  let schecked = Kernels.Kernel.parse sk in
  List.iter
    (fun threads ->
      let nest =
        Loopir.Lower.lower schecked ~func:"saxpy"
          ~params:[ ("num_threads", threads) ]
      in
      let env v = if v = "num_threads" then Some threads else None in
      let c =
        Costmodel.Contention.analyze ~arch:Archspec.Arch.paper_machine
          ~threads ~env ~checked:schecked nest
      in
      let b =
        Costmodel.Total_cost.compute ~contention:true
          ~arch:Archspec.Arch.paper_machine ~threads ~fs_cases:0 ~env
          ~checked:schecked nest
      in
      Printf.printf "  T=%-2d %s -> %.1f%% of the loop total\n" threads
        (Format.asprintf "%a" Costmodel.Contention.pp c)
        (100.
        *. b.Costmodel.Total_cost.contention_cycles
        /. b.Costmodel.Total_cost.total_cycles))
    [ 1; 8; 24; 48 ]

(* ------------------------------------------------------------------ *)
(* lines                                                               *)
(* ------------------------------------------------------------------ *)

let lines_section () =
  Printf.printf
    "False sharing vs cache-line size: the same loop, the same schedule,\n\
     lines of 32/64/128 bytes.  The model counts sharing events, which grow\n\
     with the number of neighbouring threads a line can host; the simulator\n\
     shows actual transfers, which partially amortize on longer lines (one\n\
     stolen line now carries several of a thread's future writes).\n\n";
  let threads = 8 in
  let kernel =
    if !quick then Kernels.Heat.kernel ~rows:10 ~cols:1922 ()
    else Kernels.Heat.kernel ~rows:10 ~cols:7682 ()
  in
  let checked = Kernels.Kernel.parse kernel in
  let rows =
    par_map
      (fun line ->
        let arch =
          Archspec.Arch.with_line_bytes Archspec.Arch.paper_machine line
        in
        let nest =
          Loopir.Lower.lower checked ~func:"heat_step"
            ~params:[ ("num_threads", threads) ]
        in
        let cfg =
          { (Fsmodel.Model.default_config ~arch ~threads ()) with
            Fsmodel.Model.chunk = Some 1 }
        in
        let r = Fsmodel.Model.run cfg ~nest ~checked in
        let m = Execsim.Run.measure ~arch ~chunk:1 ~threads kernel in
        [ string_of_int line;
          kcount r.Fsmodel.Model.fs_cases;
          string_of_int m.Execsim.Run.stats.Cachesim.Stats.coherence_false;
          Printf.sprintf "%.5f" m.Execsim.Run.seconds ])
      [ 32; 64; 128 ]
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "line bytes"; "modeled FS cases"; "simulated FS misses";
           "simulated time (s)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* attrib                                                              *)
(* ------------------------------------------------------------------ *)

(* A/B guard for the attribution layer: the fast engine with no recorder
   attached must stay at its zero-allocation baseline (attribution rides
   a separate duplicated loop, so the plain path gains no branch), and
   the recorder's aggregate-only overhead is reported for reference.
   Timings land in BENCH.json so a perf regression is visible in CI. *)
let attrib_times : (string * int * float * float) list ref = ref []

let attrib_section () =
  let threads = 8 in
  let kernels =
    [
      (if !quick then Kernels.Heat.kernel ~rows:10 ~cols:3842 ()
       else Kernels.Heat.kernel ());
      (if !quick then Kernels.Dft.kernel ~freqs:8 ~samples:7680 ()
       else Kernels.Dft.kernel ());
    ]
  in
  Printf.printf
    "Fast-engine wall-clock with attribution off vs on (%d threads,\n\
     chunk 1, best of 3 after one warm-up).  \"off\" is the unmodified\n\
     zero-allocation path; \"on\" attaches an aggregates-only recorder.\n\n"
    threads;
  let best_of_3 f =
    ignore (f ());
    let one () =
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      Unix.gettimeofday () -. t0
    in
    List.fold_left min (one ()) [ one (); one () ]
  in
  let rows =
    List.map
      (fun (kernel : Kernels.Kernel.t) ->
        let checked = Kernels.Kernel.parse kernel in
        let nest =
          Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
            ~params:[ ("num_threads", threads) ]
        in
        let cfg =
          { (Fsmodel.Model.default_config ~threads ()) with
            Fsmodel.Model.chunk = Some 1 }
        in
        let nrefs = List.length nest.Loopir.Loop_nest.refs in
        let fs = ref 0 in
        let t_off =
          best_of_3 (fun () ->
              let r = Fsmodel.Model.run ~engine:`Fast cfg ~nest ~checked in
              fs := r.Fsmodel.Model.fs_cases;
              r)
        in
        let t_on =
          best_of_3 (fun () ->
              let sink =
                Fsmodel.Attrib.create ~trace_cap:0 ~threads ~nrefs ()
              in
              Fsmodel.Model.run ~engine:`Fast ~attrib:sink cfg ~nest ~checked)
        in
        attrib_times :=
          (kernel.Kernels.Kernel.name, !fs, t_off, t_on) :: !attrib_times;
        [ kernel.Kernels.Kernel.name;
          kcount !fs;
          Printf.sprintf "%.4f" t_off;
          Printf.sprintf "%.4f" t_on;
          Printf.sprintf "%.1f%%" (100. *. (t_on -. t_off) /. Float.max 1e-9 t_off) ])
      kernels
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "kernel"; "N_fs"; "attrib off (s)"; "attrib on (s)"; "overhead" ]
       rows)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_section () =
  Printf.printf
    "Compile-time model vs a runtime trace-based detector (related work,\n\
     paper §V): both must rank chunk sizes identically; the model needs no\n\
     execution and the predictor needs only a few chunk runs.\n\n";
  List.iter
    (fun kernel ->
      let c = Baseline.Compare.run ~threads:8 kernel in
      Format.printf "%a@." Baseline.Compare.pp c)
    [ Kernels.Saxpy.kernel ~n:7680 ();
      Kernels.Linreg_kernel.kernel ~nacc:480 ~m:128 () ]

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

(* Service-layer throughput: the same requests `fsdetect serve` answers,
   executed in-process against a Service.Api store so the timings are
   free of protocol and process noise.  Cold = empty cache, warm = the
   identical request list again (every response a cache hit); batch =
   cold request list shared across 1..N domains, fresh store per domain
   count so every scaling point pays the same work. *)
let serve_stats :
    (int * float * float * (int * int * float) list) option ref =
  ref None

let serve_section () =
  let names = Kernels.Registry.names () in
  let lint_req ?(threads = 8) k =
    Service.Req.v (Service.Req.Kernel k)
      (Service.Req.Lint
         {
           threads;
           chunk = None;
           json = false;
           fixits = true;
           params = [];
           fail_on = Service.Req.Race;
           exact = `Auto;
           exact_budget = Analysis.Depend.default_exact_budget;
           cost_model = `Sim;
           sched = None;
           seeds = 8;
         })
  in
  let explain_req k =
    Service.Req.v (Service.Req.Kernel k)
      (Service.Req.Explain
         {
           func = None;
           threads = 8;
           chunk = None;
           params = [];
           engine = `Fast;
           format = `Text;
           top = 3;
           trace_cap = None;
           sched = None;
           seeds = 8;
         })
  in
  let reqs =
    if !quick then List.map lint_req names
    else List.concat_map (fun k -> [ lint_req k; explain_req k ]) names
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let store = Service.Api.create_store () in
  let pass () = List.iter (fun r -> ignore (Service.Api.exec store r)) reqs in
  let cold = time pass in
  let warm = time pass in
  let n = List.length reqs in
  Printf.printf
    "Cold vs warm latency over %d requests (lint%s of every bundled\n\
     kernel) on one shared store:\n\n\
    \  cold  %.4f s  (%.1f ms/request)\n\
    \  warm  %.6f s  (%.3f ms/request)\n\
    \  warm speedup: %.0fx\n" n
    (if !quick then "" else " + explain")
    cold
    (1000. *. cold /. float_of_int n)
    warm
    (1000. *. warm /. float_of_int n)
    (cold /. Float.max 1e-9 warm);
  (* batch scaling: distinct (kernel, threads) pairs so every request is
     cold work, sharded over the domain pool like a serve batch *)
  let threads_list = if !quick then [ 2; 4 ] else [ 2; 4; 8; 16 ] in
  let batch_reqs =
    List.concat_map
      (fun k -> List.map (fun t -> lint_req ~threads:t k) threads_list)
      names
  in
  let bn = List.length batch_reqs in
  let counts =
    List.sort_uniq compare
      (List.filter (fun d -> d <= !domains) [ 1; 2; 4; !domains ])
  in
  Printf.printf
    "\nBatch throughput, %d cold lint requests sharded across domains\n\
     (fresh store per row):\n\n" bn;
  let batch =
    List.map
      (fun d ->
        let store = Service.Api.create_store () in
        let dt =
          time (fun () ->
              ignore
                (Fsmodel.Par_sweep.map ~domains:d (Service.Api.exec store)
                   batch_reqs))
        in
        Printf.printf "  %2d domain%s  %.3f s  (%.1f requests/s)\n" d
          (if d = 1 then " " else "s")
          dt
          (float_of_int bn /. dt);
        (d, bn, dt))
      counts
  in
  serve_stats := Some (n, cold, warm, batch)

(* ------------------------------------------------------------------ *)
(* exact                                                               *)
(* ------------------------------------------------------------------ *)

(* Decisiveness and cost of the exact dependence tier: every registry
   kernel's reference pairs classified with the tier off (Banerjee
   only), then with the default budget.  "upgraded" counts pairs whose
   Banerjee verdict was Unknown and became definite; "promoted" counts
   pairs whose may-claim was certified as a must with a witness. *)
let exact_stats : (string * int * int * int * float * float) list ref = ref []

let exact_section () =
  let threads = 8 in
  let params = [ ("num_threads", threads) ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf
    "Two-tier dependence analysis over every bundled kernel: Banerjee\n\
     only (--exact off) vs the default exact tier.  \"upgraded\" pairs\n\
     went from Unknown to a definite verdict; \"promoted\" pairs had a\n\
     may-claim certified as a must-conflict with a witness.\n\n";
  let rows =
    List.map
      (fun (kernel : Kernels.Kernel.t) ->
        let checked = Kernels.Kernel.parse kernel in
        let nest =
          Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func ~params
        in
        let off, t_off =
          time (fun () ->
              Analysis.Depend.pairs ~line_bytes:64 ~params ~exact:`Off nest)
        in
        let on, t_on =
          time (fun () -> Analysis.Depend.pairs ~line_bytes:64 ~params nest)
        in
        let unknown (p : Analysis.Depend.pair) =
          match p.Analysis.Depend.verdict with
          | Analysis.Depend.Unknown _ -> true
          | _ -> false
        in
        let count2 f = List.fold_left2 (fun n a b -> if f a b then n + 1 else n) 0 off on in
        let upgraded = count2 (fun po pe -> unknown po && not (unknown pe)) in
        let promoted =
          count2
            (fun (po : Analysis.Depend.pair) (pe : Analysis.Depend.pair) ->
              (not po.Analysis.Depend.ev.Analysis.Depend.ev_must)
              && pe.Analysis.Depend.ev.Analysis.Depend.ev_must)
        in
        exact_stats :=
          ( kernel.Kernels.Kernel.name,
            List.length on,
            upgraded,
            promoted,
            t_off,
            t_on )
          :: !exact_stats;
        [
          kernel.Kernels.Kernel.name;
          string_of_int (List.length on);
          string_of_int upgraded;
          string_of_int promoted;
          Printf.sprintf "%.4f" t_off;
          Printf.sprintf "%.4f" t_on;
        ])
      (Kernels.Registry.all ())
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "kernel"; "pairs"; "upgraded"; "promoted"; "banerjee (s)";
           "exact (s)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* cost model: analytic reuse-distance prediction vs the simulator      *)
(* ------------------------------------------------------------------ *)

(* kernel, threads, predicted/simulated beyond-L1 traffic and DRAM
   fetches, decision wall time of each path *)
let cost_model_stats :
    (string * int * float * float * float * float * float * float) list ref =
  ref []

let cost_model_section () =
  let arch = Archspec.Arch.small_test_machine in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf
    "Static reuse-distance prediction (Analysis.Reuse, zero simulation)\n\
     vs the execution-driven cache simulator on every bundled kernel at\n\
     the small test machine.  \"beyond-L1\" is the predicted traffic the\n\
     Eq. 1 cache term prices; the seconds columns compare the cost of\n\
     reaching a verdict each way.\n\n";
  let rows =
    List.concat_map
      (fun (kernel : Kernels.Kernel.t) ->
        let checked = Kernels.Kernel.parse kernel in
        List.map
          (fun threads ->
            let params = [ ("num_threads", threads) ] in
            let nest =
              Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
                ~params
            in
            let p, t_an =
              time (fun () ->
                  Analysis.Reuse.predict ~arch ~threads
                    ~env:(fun v -> List.assoc_opt v params)
                    nest)
            in
            let m, t_sim =
              time (fun () -> Execsim.Run.measure ~arch ~threads kernel)
            in
            let st = m.Execsim.Run.stats in
            let sim_acc = float_of_int (Cachesim.Stats.accesses st) in
            let sim_beyond =
              sim_acc -. float_of_int st.Cachesim.Stats.l1_hits
            in
            let sim_mem = float_of_int st.Cachesim.Stats.mem_fetches in
            let pred_beyond =
              p.Analysis.Reuse.accesses -. p.Analysis.Reuse.l1_hits
            in
            cost_model_stats :=
              ( kernel.Kernels.Kernel.name,
                threads,
                pred_beyond,
                sim_beyond,
                p.Analysis.Reuse.mem_fetches,
                sim_mem,
                t_an,
                t_sim )
              :: !cost_model_stats;
            let err p s =
              if s <= 0. then "-"
              else Printf.sprintf "%+.1f%%" (100. *. (p -. s) /. s)
            in
            [
              kernel.Kernels.Kernel.name;
              string_of_int threads;
              Printf.sprintf "%.0f" pred_beyond;
              Printf.sprintf "%.0f" sim_beyond;
              err pred_beyond sim_beyond;
              Printf.sprintf "%.0f" p.Analysis.Reuse.mem_fetches;
              Printf.sprintf "%.0f" sim_mem;
              Printf.sprintf "%.4f" t_an;
              Printf.sprintf "%.4f" t_sim;
            ])
          [ 2; 4 ])
      (Kernels.Registry.all ())
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "kernel"; "t"; "pred >L1"; "sim >L1"; "err"; "pred mem";
           "sim mem"; "analytic (s)"; "sim (s)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* fix: materialized fixes re-analyzed — the verified-elimination loop *)
(* ------------------------------------------------------------------ *)

(* kernel, function, fs before/after (reference engine), removal
   fraction, analytic cost ratio (None when no certificate), verified *)
let fix_stats :
    (string * string * int * int * float * float option * bool) list ref =
  ref []

let fix_section () =
  let threads = 8 in
  Printf.printf
    "Verified elimination: every registry and micro-pattern kernel's\n\
     advised plan is materialized as transformed mini-C and the whole\n\
     analysis stack re-run on the result (%d threads).  The gate in\n\
     `make fix-verify` requires >= 90%% attributed-FS removal and no\n\
     analytic cost regression; kernels with no attributed FS report an\n\
     explicitly empty plan.\n\n"
    threads;
  let rows =
    List.concat_map
      (fun (kernel : Kernels.Kernel.t) ->
        let name = kernel.Kernels.Kernel.name in
        let checked = Kernels.Kernel.parse kernel in
        List.map
          (fun func ->
            let advice =
              Fsmodel.Advisor.advise ~domains:!domains ~threads ~func checked
            in
            match Analysis.Fixer.verify ~advice ~threads ~func checked with
            | Analysis.Fixer.Nothing_to_fix _ ->
                [ name; func; "-"; "-"; "-"; "-"; "clean" ]
            | Analysis.Fixer.Fix v ->
                fix_stats :=
                  ( name,
                    func,
                    v.Analysis.Fixer.before.Analysis.Fixer.fs_ref,
                    v.Analysis.Fixer.after.Analysis.Fixer.fs_ref,
                    v.Analysis.Fixer.removal,
                    v.Analysis.Fixer.cost_ratio,
                    v.Analysis.Fixer.verified )
                  :: !fix_stats;
                [
                  name;
                  func;
                  string_of_int v.Analysis.Fixer.before.Analysis.Fixer.fs_ref;
                  string_of_int v.Analysis.Fixer.after.Analysis.Fixer.fs_ref;
                  Printf.sprintf "%.1f%%" (100. *. v.Analysis.Fixer.removal);
                  (match v.Analysis.Fixer.cost_ratio with
                  | Some r -> Printf.sprintf "%.2fx" r
                  | None -> "-");
                  (if v.Analysis.Fixer.verified then "VERIFIED"
                   else "UNVERIFIED");
                ])
          (Loopir.Lower.find_parallel_functions checked.Minic.Typecheck.prog))
      (Kernels.Registry.all () @ Kernels.Registry.micros ())
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "kernel"; "function"; "fs before"; "fs after"; "removed";
           "cost"; "verdict" ]
       rows);
  let fixed = List.length !fix_stats in
  let verified =
    List.length (List.filter (fun (_, _, _, _, _, _, ok) -> ok) !fix_stats)
  in
  Printf.printf "\n%d fix(es) materialized, %d verified (%.0f%%)\n" fixed
    verified
    (if fixed = 0 then 100. else 100. *. float_of_int verified /. float_of_int fixed)

(* ------------------------------------------------------------------ *)
(* sched: distributional FS verdicts under seeded schedules            *)
(* ------------------------------------------------------------------ *)

(* kernel, schedule kind, seed count, mean/stddev/p95/max of the
   per-seed engine N_fs, mean steals per seed, sweep wall seconds *)
let sched_stats :
    (string * string * int * float * float * int * int * float * float)
    list ref =
  ref []

let sched_section () =
  let threads = 8 in
  let nseeds = if !quick then 8 else 16 in
  let seeds = Analysis.Dist.seeds_upto nseeds in
  let kinds =
    [
      Ompsched.Dispatch.Dynamic { chunk = 1 };
      Ompsched.Dispatch.Guided { min_chunk = 2 };
      Ompsched.Dispatch.Work_stealing { chunk = 2 };
    ]
  in
  let kernels =
    if !quick then
      [
        Kernels.Heat.kernel ~rows:6 ~cols:520 ();
        Kernels.Saxpy.kernel ~n:640 ();
        Kernels.Transpose.kernel ~n:48 ();
      ]
    else
      [
        Kernels.Heat.kernel ~rows:10 ~cols:2050 ();
        Kernels.Saxpy.kernel ~n:4096 ();
        Kernels.Transpose.kernel ~n:96 ();
      ]
  in
  Printf.printf
    "Distributional verdicts: each nondeterministic schedule kind is\n\
     replayed over %d seeds per kernel (%d threads) and the per-seed\n\
     engine N_fs summarized.  The spread (stddev, p95 vs mean) is what\n\
     the seeded statistical tier quantifies; steals/seed is nonzero only\n\
     under work stealing.\n\n"
    nseeds threads;
  let rows =
    List.concat_map
      (fun (kernel : Kernels.Kernel.t) ->
        let checked = Kernels.Kernel.parse kernel in
        let nest =
          Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
            ~params:[ ("num_threads", threads) ]
        in
        let cfg = Fsmodel.Model.default_config ~threads () in
        List.map
          (fun kind ->
            let t0 = Unix.gettimeofday () in
            let d =
              Analysis.Dist.run ~domains:!domains ~seeds ~kind cfg ~nest
                ~checked
            in
            let dt = Unix.gettimeofday () -. t0 in
            sched_stats :=
              ( kernel.Kernels.Kernel.name,
                Ompsched.Dispatch.kind_name kind,
                nseeds,
                d.Analysis.Dist.mean,
                d.Analysis.Dist.stddev,
                d.Analysis.Dist.p95,
                d.Analysis.Dist.max_fs,
                d.Analysis.Dist.mean_steals,
                dt )
              :: !sched_stats;
            [
              kernel.Kernels.Kernel.name;
              Ompsched.Dispatch.kind_name kind;
              Printf.sprintf "%.1f" d.Analysis.Dist.mean;
              Printf.sprintf "%.1f" d.Analysis.Dist.stddev;
              string_of_int d.Analysis.Dist.p95;
              Printf.sprintf "%d..%d" d.Analysis.Dist.min_fs
                d.Analysis.Dist.max_fs;
              Printf.sprintf "%.1f" d.Analysis.Dist.mean_steals;
              Printf.sprintf "%.4f" dt;
            ])
          kinds)
      kernels
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "kernel"; "schedule"; "mean fs"; "stddev"; "p95"; "range";
           "steals/seed"; "sweep (s)" ]
       rows)

(* ------------------------------------------------------------------ *)
(* micro (bechamel)                                                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  if not !micro_enabled then
    print_endline "micro-benchmarks disabled (--no-micro)"
  else begin
    let open Bechamel in
    let small_heat = Kernels.Heat.kernel ~rows:6 ~cols:258 () in
    let small_dft = Kernels.Dft.kernel ~freqs:4 ~samples:256 () in
    let small_linreg = Kernels.Linreg_kernel.kernel ~nacc:64 ~m:64 () in
    let prep (k : Kernels.Kernel.t) =
      let checked = Kernels.Kernel.parse k in
      let nest =
        Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func
          ~params:[ ("num_threads", 4) ]
      in
      (k, checked, nest)
    in
    let heat = prep small_heat in
    let dft = prep small_dft in
    let linreg = prep small_linreg in
    let model (_, checked, nest) () =
      let cfg = Fsmodel.Model.default_config ~threads:4 () in
      ignore (Fsmodel.Model.run cfg ~nest ~checked)
    in
    let predict (k, checked, nest) () =
      let cfg = Fsmodel.Model.default_config ~threads:4 () in
      ignore
        (Fsmodel.Predict.predict ~runs:k.Kernels.Kernel.pred_runs cfg ~nest
           ~checked)
    in
    let simulate (k, _, _) () =
      ignore (Execsim.Run.measure ~threads:4 ~chunk:1 k)
    in
    let tests =
      [
        Test.make ~name:"tab1/heat: full model"
          (Staged.stage (model heat));
        Test.make ~name:"tab2/dft: full model" (Staged.stage (model dft));
        Test.make ~name:"tab3/linreg: full model"
          (Staged.stage (model linreg));
        Test.make ~name:"tab4/heat: predictor" (Staged.stage (predict heat));
        Test.make ~name:"tab5/dft: predictor" (Staged.stage (predict dft));
        Test.make ~name:"tab6/linreg: predictor"
          (Staged.stage (predict linreg));
        Test.make ~name:"fig2/fig8: simulator run"
          (Staged.stage (simulate heat));
        Test.make ~name:"fig6: model with samples"
          (Staged.stage (fun () ->
               let _, checked, nest = heat in
               let cfg = Fsmodel.Model.default_config ~threads:4 () in
               ignore
                 (Fsmodel.Model.run ~record_samples:true cfg ~nest ~checked)));
        Test.make ~name:"frontend: parse+check+lower"
          (Staged.stage (fun () ->
               let k, _, _ = heat in
               let checked = Kernels.Kernel.parse k in
               ignore
                 (Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func
                    ~params:[ ("num_threads", 4) ])));
      ]
    in
    let cfg =
      Benchmark.cfg ~limit:60 ~quota:(Time.second 0.5) ~stabilize:false ()
    in
    let raw =
      Benchmark.all cfg
        Toolkit.Instance.[ monotonic_clock ]
        (Test.make_grouped ~name:"paper" tests)
    in
    let ols =
      Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name ols ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Printf.sprintf "%.3f ms" (e /. 1e6)
          | _ -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        rows := [ name; est; r2 ] :: !rows)
      results;
    print_endline
      (Fsmodel.Report.table
         ~header:[ "pipeline (small instance)"; "time/run"; "r²" ]
         (List.sort compare !rows))
  end

(* ------------------------------------------------------------------ *)
(* BENCH.json                                                          *)
(* ------------------------------------------------------------------ *)

(* Machine-readable run record: wall-clock per pipeline section plus the
   headline FS counts accumulated in [study_cache].  Hand-rolled printer —
   the numbers are ints/floats and the strings are section ids and kernel
   names, so no escaping is needed. *)
let write_bench_json ~total path =
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"quick\": %b,\n" !quick;
  bpf "  \"domains\": %d,\n" !domains;
  bpf "  \"total_seconds\": %.3f,\n" total;
  bpf "  \"sections\": [\n";
  let sections = List.rev !section_times in
  List.iteri
    (fun i (id, dt) ->
      bpf "    { \"id\": %S, \"seconds\": %.3f }%s\n" id dt
        (if i = List.length sections - 1 then "" else ","))
    sections;
  bpf "  ],\n";
  (* sections that did not run leave no key at all (an --only run used
     to emit "attrib_overhead": [], which readers took for a regression
     to zero coverage) *)
  let at = List.rev !attrib_times in
  if at <> [] then begin
    bpf "  \"attrib_overhead\": [\n";
    List.iteri
      (fun i (kernel, fs, t_off, t_on) ->
        bpf
          "    { \"kernel\": %S, \"model_fs\": %d, \"seconds_off\": %.4f, \
           \"seconds_on\": %.4f }%s\n"
          kernel fs t_off t_on
          (if i = List.length at - 1 then "" else ","))
      at;
    bpf "  ],\n"
  end;
  (match !serve_stats with
  | None -> ()
  | Some (n, cold, warm, batch) ->
      bpf "  \"serve\": {\n";
      bpf "    \"requests\": %d,\n" n;
      bpf "    \"cold_seconds\": %.4f,\n" cold;
      bpf "    \"warm_seconds\": %.6f,\n" warm;
      bpf "    \"warm_speedup\": %.1f,\n" (cold /. Float.max 1e-9 warm);
      bpf "    \"batch\": [\n";
      List.iteri
        (fun i (d, bn, dt) ->
          bpf
            "      { \"domains\": %d, \"requests\": %d, \"seconds\": %.4f, \
             \"rps\": %.1f }%s\n"
            d bn dt
            (float_of_int bn /. Float.max 1e-9 dt)
            (if i = List.length batch - 1 then "" else ","))
        batch;
      bpf "    ]\n";
      bpf "  },\n");
  (* cost_model: analytic reuse-distance model vs the simulator.  Schema
     per entry: kernel, threads, pred/sim beyond-L1 accesses, pred/sim
     DRAM fetches, and the wall seconds each path took to decide. *)
  let cm = List.rev !cost_model_stats in
  if cm <> [] then begin
    bpf "  \"cost_model\": [\n";
    List.iteri
      (fun i (kernel, threads, pb, sb, pm, sm, t_an, t_sim) ->
        bpf
          "    { \"kernel\": %S, \"threads\": %d, \"pred_beyond_l1\": \
           %.0f, \"sim_beyond_l1\": %.0f, \"pred_mem\": %.0f, \
           \"sim_mem\": %.0f, \"seconds_analytic\": %.4f, \
           \"seconds_sim\": %.4f }%s\n"
          kernel threads pb sb pm sm t_an t_sim
          (if i = List.length cm - 1 then "" else ","))
      cm;
    bpf "  ],\n"
  end;
  let ex = List.rev !exact_stats in
  if ex <> [] then begin
    bpf "  \"exact\": [\n";
    List.iteri
      (fun i (kernel, pairs, upgraded, promoted, t_off, t_on) ->
        bpf
          "    { \"kernel\": %S, \"pairs\": %d, \"upgraded\": %d, \
           \"promoted\": %d, \"seconds_banerjee\": %.4f, \"seconds_exact\": \
           %.4f }%s\n"
          kernel pairs upgraded promoted t_off t_on
          (if i = List.length ex - 1 then "" else ","))
      ex;
    bpf "  ],\n"
  end;
  (* fix: the verified-elimination loop.  Schema per entry: kernel,
     function, reference-engine FS before/after the materialized fix,
     removal fraction, analytic cost ratio (absent without a
     certificate), verified flag; plus the aggregate verified share. *)
  let fx = List.rev !fix_stats in
  if fx <> [] then begin
    bpf "  \"fix\": {\n";
    bpf "    \"kernels\": [\n";
    List.iteri
      (fun i (kernel, func, before, after, removal, ratio, ok) ->
        bpf
          "      { \"kernel\": %S, \"function\": %S, \"fs_before\": %d, \
           \"fs_after\": %d, \"removal\": %.4f, %s\"verified\": %b }%s\n"
          kernel func before after removal
          (match ratio with
          | Some r -> Printf.sprintf "\"cost_ratio\": %.4f, " r
          | None -> "")
          ok
          (if i = List.length fx - 1 then "" else ","))
      fx;
    bpf "    ],\n";
    let verified =
      List.length (List.filter (fun (_, _, _, _, _, _, ok) -> ok) fx)
    in
    bpf "    \"materialized\": %d,\n" (List.length fx);
    bpf "    \"verified\": %d,\n" verified;
    bpf "    \"verified_percent\": %.1f\n"
      (100. *. float_of_int verified /. float_of_int (List.length fx));
    bpf "  },\n"
  end;
  (* sched: distributional verdicts under seeded schedules.  Schema per
     entry: kernel, schedule kind, seed count, mean/stddev/p95/max of
     the per-seed engine N_fs, mean steals per seed, and the wall
     seconds the whole seed sweep took. *)
  let sc = List.rev !sched_stats in
  if sc <> [] then begin
    bpf "  \"sched\": [\n";
    List.iteri
      (fun i (kernel, kind, nseeds, mean, stddev, p95, mx, msteals, dt) ->
        bpf
          "    { \"kernel\": %S, \"schedule\": %S, \"seeds\": %d, \
           \"mean_fs\": %.1f, \"stddev_fs\": %.1f, \"p95_fs\": %d, \
           \"max_fs\": %d, \"mean_steals\": %.1f, \"seconds\": %.4f }%s\n"
          kernel kind nseeds mean stddev p95 mx msteals dt
          (if i = List.length sc - 1 then "" else ","))
      sc;
    bpf "  ],\n"
  end;
  bpf "  \"fs_counts\": [\n";
  let entries =
    Hashtbl.fold
      (fun kernel rows acc ->
        List.fold_left
          (fun acc (r : row) -> (kernel, r) :: acc)
          acc rows)
      study_cache []
    |> List.sort compare
  in
  List.iteri
    (fun i (kernel, (r : row)) ->
      bpf
        "    { \"kernel\": %S, \"threads\": %d, \"model_fs\": %d, \
         \"pred_fs\": %d, \"sim_fs_misses\": %d, \"model_percent\": %.2f, \
         \"measured_percent\": %.2f }%s\n"
        kernel r.threads r.full.Fsmodel.Overhead_percent.n_fs
        r.pred.Fsmodel.Overhead_percent.n_fs
        r.meas.Execsim.Run.fs.Execsim.Run.stats
          .Cachesim.Stats.coherence_false
        r.full.Fsmodel.Overhead_percent.percent
        r.meas.Execsim.Run.percent
        (if i = List.length entries - 1 then "" else ","))
    entries;
  bpf "  ]\n";
  bpf "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  Printf.printf
    "Reproduction harness: Tolubaeva, Yan, Chapman — Compile-Time Detection\n\
     of False Sharing via Loop Cost Modeling (2012)%s\n"
    (if !quick then " [quick mode]" else "");
  let t0 = Unix.gettimeofday () in
  section "fig2" "execution time vs chunk size (linear regression)" fig2;
  section "tab1" "measured vs modeled FS overhead — heat diffusion" tab1;
  section "tab2" "measured vs modeled FS overhead — DFT" tab2;
  section "tab3" "measured vs modeled FS overhead — linear regression" tab3;
  section "tab4" "predicted vs modeled FS cases — heat diffusion" tab4;
  section "tab5" "predicted vs modeled FS cases — DFT" tab5;
  section "tab6" "predicted vs modeled FS cases — linear regression" tab6;
  section "fig6" "FS cases grow linearly with chunk runs" fig6;
  section "fig8" "measured/modeled/predicted vs threads — heat" fig8;
  section "fig9" "measured/modeled/predicted vs threads — DFT" fig9;
  section "calib" "fs_cost_factor calibration" calib;
  section "lines" "false sharing vs cache-line size" lines_section;
  section "ablate" "design-choice ablations" ablate;
  section "attrib" "attribution on/off engine A/B" attrib_section;
  section "compare" "compile-time model vs runtime detector" compare_section;
  section "serve" "analysis service: cold vs warm, batch scaling" serve_section;
  section "exact" "two-tier dependence: Banerjee vs the exact tier"
    exact_section;
  section "costmodel" "analytic reuse-distance model vs the simulator"
    cost_model_section;
  section "fix" "verified elimination: materialized fixes re-analyzed"
    fix_section;
  section "sched" "distributional FS verdicts under seeded schedules"
    sched_section;
  section "micro" "bechamel micro-benchmarks" micro;
  let total = Unix.gettimeofday () -. t0 in
  write_bench_json ~total "BENCH.json";
  Printf.printf "\n[total %.1fs over %d domain%s — wrote BENCH.json]\n" total
    !domains
    (if !domains = 1 then "" else "s")

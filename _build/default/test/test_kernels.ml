(* Tests for the bundled kernels: they parse, typecheck, lower, and have
   the structure the paper describes. *)

let check = Alcotest.check

let test_all_parse_and_lower () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let checked = Kernels.Kernel.parse k in
      List.iter
        (fun threads ->
          let nest =
            Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func
              ~params:[ ("num_threads", threads) ]
          in
          check Alcotest.bool
            (k.Kernels.Kernel.name ^ " has refs")
            true
            (nest.Loopir.Loop_nest.refs <> []);
          check Alcotest.bool
            (k.Kernels.Kernel.name ^ " has a write")
            true
            (List.exists Loopir.Array_ref.is_write nest.Loopir.Loop_nest.refs))
        [ 2; 48 ];
      match k.Kernels.Kernel.init_func with
      | Some init ->
          check Alcotest.bool
            (k.Kernels.Kernel.name ^ " init exists")
            true
            (Minic.Ast.find_func checked.Minic.Typecheck.prog init <> None)
      | None -> ())
    (Kernels.Registry.all ())

let test_registry () =
  check Alcotest.int "seven kernels" 7 (List.length (Kernels.Registry.all ()));
  check Alcotest.bool "find heat" true (Kernels.Registry.find "heat" <> None);
  check Alcotest.bool "unknown" true (Kernels.Registry.find "zzz" = None);
  check
    (Alcotest.list Alcotest.string)
    "names"
    [ "heat"; "dft"; "linear_regression"; "saxpy"; "stencil1d"; "matvec";
      "transpose" ]
    (Kernels.Registry.names ())

let test_parallel_levels () =
  let depth name =
    let k = Option.get (Kernels.Registry.find name) in
    let checked = Kernels.Kernel.parse k in
    let nest =
      Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func
        ~params:[ ("num_threads", 4) ]
    in
    (nest.Loopir.Loop_nest.parallel_depth, Loopir.Loop_nest.depth nest)
  in
  (* heat and dft parallelize the innermost loop (paper §IV-B); linreg the
     outermost (Fig. 1) *)
  check (Alcotest.pair Alcotest.int Alcotest.int) "heat inner" (1, 2)
    (depth "heat");
  check (Alcotest.pair Alcotest.int Alcotest.int) "dft inner" (1, 2)
    (depth "dft");
  check (Alcotest.pair Alcotest.int Alcotest.int) "linreg outer" (0, 2)
    (depth "linear_regression")

let test_linreg_inner_trip_uses_num_threads () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:8 ~m:64 () in
  let checked = Kernels.Kernel.parse k in
  let total threads =
    let nest =
      Loopir.Lower.lower checked ~func:"linear_regression"
        ~params:[ ("num_threads", threads) ]
    in
    Loopir.Loop_nest.total_iterations nest ~env:(fun v ->
        if v = "num_threads" then Some threads else None)
  in
  (* paper: each unit processes M/num_threads points *)
  check Alcotest.int "T=2" (8 * 32) (total 2);
  check Alcotest.int "T=8" (8 * 8) (total 8)

let test_balanced_defaults () =
  (* default sizes are divisible by threads*chunk for both chunk settings
     at every measured team size *)
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let checked = Kernels.Kernel.parse k in
      List.iter
        (fun threads ->
          let nest =
            Loopir.Lower.lower checked ~func:k.Kernels.Kernel.func
              ~params:[ ("num_threads", threads) ]
          in
          let trip =
            Loopir.Loop_nest.trip_count
              (Loopir.Loop_nest.parallel_loop nest)
              ~env:(fun v -> if v = "num_threads" then Some threads else None)
          in
          List.iter
            (fun chunk ->
              check Alcotest.int
                (Printf.sprintf "%s T=%d c=%d balanced"
                   k.Kernels.Kernel.name threads chunk)
                0
                (trip mod (threads * chunk)))
            [ k.Kernels.Kernel.fs_chunk; k.Kernels.Kernel.nfs_chunk ])
        [ 2; 4; 8; 16; 24; 32; 40; 48 ])
    [ Kernels.Heat.kernel (); Kernels.Dft.kernel ();
      Kernels.Linreg_kernel.kernel () ]

let test_fs_nfs_chunks_differ () =
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      check Alcotest.bool
        (k.Kernels.Kernel.name ^ " nfs > fs chunk")
        true
        (k.Kernels.Kernel.nfs_chunk > k.Kernels.Kernel.fs_chunk))
    (Kernels.Registry.all ())

let test_kernel_model_shapes () =
  (* chunked runs must produce strictly fewer FS cases on every kernel *)
  List.iter
    (fun (k : Kernels.Kernel.t) ->
      let small =
        match k.Kernels.Kernel.name with
        | "heat" -> Kernels.Heat.kernel ~rows:6 ~cols:258 ()
        | "dft" -> Kernels.Dft.kernel ~freqs:4 ~samples:256 ()
        | "linear_regression" -> Kernels.Linreg_kernel.kernel ~nacc:64 ~m:64 ()
        | "saxpy" -> Kernels.Saxpy.kernel ~n:512 ()
        | "matvec" -> Kernels.Matvec.kernel ~rows:64 ~cols:32 ()
        | "transpose" -> Kernels.Transpose.kernel ~n:64 ()
        | _ -> Kernels.Stencil1d.kernel ~n:514 ~steps:2 ()
      in
      let checked = Kernels.Kernel.parse small in
      let nest =
        Loopir.Lower.lower checked ~func:small.Kernels.Kernel.func
          ~params:[ ("num_threads", 4) ]
      in
      let run chunk =
        let cfg =
          { (Fsmodel.Model.default_config ~threads:4 ()) with
            Fsmodel.Model.chunk = Some chunk }
        in
        (Fsmodel.Model.run cfg ~nest ~checked).Fsmodel.Model.fs_cases
      in
      let fs = run small.Kernels.Kernel.fs_chunk in
      let nfs = run small.Kernels.Kernel.nfs_chunk in
      check Alcotest.bool
        (small.Kernels.Kernel.name ^ ": fs chunk worse")
        true (fs > nfs))
    (Kernels.Registry.all ())

let test_matvec_values_and_victim () =
  let k = Kernels.Matvec.kernel ~rows:16 ~cols:8 () in
  let checked = Kernels.Kernel.parse k in
  let it = Execsim.Interp.create ~threads:4 checked in
  Execsim.Interp.exec it ~func:"init";
  Execsim.Interp.exec it ~func:"matvec";
  let expect i =
    let acc = ref 0. in
    for j = 0 to 7 do
      acc :=
        !acc
        +. ((0.25 *. float_of_int i) -. (0.125 *. float_of_int j))
           /. (1.0 +. float_of_int j)
    done;
    !acc
  in
  (match Execsim.Interp.read_global it "y" [ Execsim.Interp.Idx 5 ] with
  | Execsim.Value.V_float f ->
      check (Alcotest.float 1e-9) "y[5]" (expect 5) f
  | _ -> Alcotest.fail "float");
  let advice = Fsmodel.Advisor.advise ~threads:4 ~func:"matvec" checked in
  match advice.Fsmodel.Advisor.victims with
  | [ v ] ->
      check Alcotest.string "victim" "y" v.Fsmodel.Advisor.base;
      check Alcotest.int "pad" 56 v.Fsmodel.Advisor.padding_bytes
  | _ -> Alcotest.fail "one victim"

let test_transpose_values_and_fs () =
  let k = Kernels.Transpose.kernel ~n:16 () in
  let checked = Kernels.Kernel.parse k in
  let it = Execsim.Interp.create ~threads:4 checked in
  Execsim.Interp.exec it ~func:"init";
  Execsim.Interp.exec it ~func:"transpose";
  (match
     Execsim.Interp.read_global it "B" [ Execsim.Interp.Idx 3; Execsim.Interp.Idx 7 ]
   with
  | Execsim.Value.V_float f ->
      check (Alcotest.float 1e-9) "B[3][7] = A[7][3]" ((7. *. 16.) +. 3.) f
  | _ -> Alcotest.fail "float");
  (* the write B[j][i] strides 8 bytes per parallel iteration: heavy FS at
     chunk 1, none at chunk 8 *)
  let nest =
    Loopir.Lower.lower checked ~func:"transpose"
      ~params:[ ("num_threads", 4) ]
  in
  let run chunk =
    let cfg =
      { (Fsmodel.Model.default_config ~threads:4 ()) with
        Fsmodel.Model.chunk = Some chunk }
    in
    (Fsmodel.Model.run cfg ~nest ~checked).Fsmodel.Model.fs_cases
  in
  check Alcotest.bool "fs at chunk 1" true (run 1 > 100);
  check Alcotest.int "no fs at chunk 8" 0 (run 8)

let () =
  Alcotest.run "kernels"
    [
      ( "kernels",
        [
          Alcotest.test_case "parse and lower" `Quick test_all_parse_and_lower;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "parallel levels" `Quick test_parallel_levels;
          Alcotest.test_case "linreg num_threads trip" `Quick
            test_linreg_inner_trip_uses_num_threads;
          Alcotest.test_case "balanced defaults" `Quick test_balanced_defaults;
          Alcotest.test_case "chunk config sane" `Quick
            test_fs_nfs_chunks_differ;
          Alcotest.test_case "model shapes" `Quick test_kernel_model_shapes;
          Alcotest.test_case "matvec" `Quick test_matvec_values_and_victim;
          Alcotest.test_case "transpose" `Quick test_transpose_values_and_fs;
        ] );
    ]

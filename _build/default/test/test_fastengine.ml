(* The fast engine's contract is bit-identical results to the reference
   transcription of the paper's procedure (Model.run ~engine:`Reference).
   This suite checks that contract on every registry kernel across several
   (threads, chunk) configurations, on randomly generated small nests, and
   checks that Par_sweep returns the same results at any domain count. *)

open Fsmodel

let check = Alcotest.check

let sample =
  Alcotest.testable
    (fun ppf (s : Model.run_sample) ->
      Format.fprintf ppf "(run %d, fs %d)" s.Model.chunk_run
        s.Model.cumulative_fs)
    ( = )

(* run both engines on one lowered nest and insist on identical results *)
let assert_engines_agree ~what ?max_chunk_runs cfg ~nest ~checked =
  let go engine =
    Model.run ?max_chunk_runs ~record_samples:true ~engine cfg ~nest ~checked
  in
  let fast = go `Fast and refr = go `Reference in
  check Alcotest.int (what ^ ": fs_cases") refr.Model.fs_cases
    fast.Model.fs_cases;
  check Alcotest.int (what ^ ": thread_steps") refr.Model.thread_steps
    fast.Model.thread_steps;
  check Alcotest.int
    (what ^ ": iterations_evaluated")
    refr.Model.iterations_evaluated fast.Model.iterations_evaluated;
  check Alcotest.int (what ^ ": chunk_runs") refr.Model.chunk_runs
    fast.Model.chunk_runs;
  check Alcotest.bool (what ^ ": truncated") refr.Model.truncated
    fast.Model.truncated;
  check (Alcotest.list sample) (what ^ ": samples") refr.Model.samples
    fast.Model.samples

(* ------------------------------------------------------------------ *)
(* registry kernels                                                    *)
(* ------------------------------------------------------------------ *)

let configs = [ (2, None); (3, Some 1); (8, Some 4); (63, Some 2) ]

let test_registry_oracle () =
  List.iter
    (fun (kernel : Kernels.Kernel.t) ->
      let checked = Kernels.Kernel.parse kernel in
      List.iter
        (fun (threads, chunk) ->
          let nest =
            Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
              ~params:[ ("num_threads", threads) ]
          in
          let cfg =
            { (Model.default_config ~threads ()) with Model.chunk }
          in
          let what =
            Printf.sprintf "%s t=%d c=%s" kernel.Kernels.Kernel.name threads
              (match chunk with Some c -> string_of_int c | None -> "pragma")
          in
          (* cap the evaluation: equivalence per step implies equivalence
             overall, and the full kernels are bench-sized *)
          assert_engines_agree ~what ~max_chunk_runs:8 cfg ~nest ~checked)
        configs)
    (Kernels.Registry.all ())

(* the stack-policy and invalidation ablations also go through both
   engines, so pin those paths too (small kernel, full evaluation) *)
let test_ablation_configs_oracle () =
  let kernel = Kernels.Heat.kernel ~rows:4 ~cols:258 () in
  let checked = Kernels.Kernel.parse kernel in
  let threads = 6 in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", threads) ]
  in
  let base = Model.default_config ~threads () in
  List.iter
    (fun (what, cfg) -> assert_engines_agree ~what cfg ~nest ~checked)
    [
      ("L1 stack", base);
      ("L2 stack", { base with Model.stack = Model.Level_l2 });
      ("8-line stack", { base with Model.stack = Model.Lines 8 });
      ("unbounded", { base with Model.stack = Model.Unbounded });
      ("invalidate", { base with Model.invalidate_on_write = true });
    ]

(* ------------------------------------------------------------------ *)
(* random small nests                                                  *)
(* ------------------------------------------------------------------ *)

(* a templated mini-C generator: enough shape variety (nesting, multiple
   refs, strides, read/write mixes, straddling doubles) to exercise the
   cursor deltas, the odometer carries, and the dedup buffer *)
type gen_nest = {
  n : int;  (** parallel trip count *)
  m : int;  (** inner trip count; 0 = no inner loop *)
  chunk : int;
  threads : int;
  stmt : int;  (** statement variant *)
}

let source_of g =
  let body =
    match g.stmt with
    | 0 -> "a[i] = 1.0;"
    | 1 -> "a[i] = a[i] + b[i];"
    | 2 -> "a[2 * i] = b[i] + 1.0;"
    | 3 -> if g.m > 0 then "a[i + j] = a[i + j] + 1.0;" else "a[i] = 2.0;"
    | 4 -> if g.m > 0 then "a[i] = a[i] + b[j];" else "a[i] = b[i];"
    | _ -> if g.m > 0 then "c[4 * i + j] = a[i] + b[j];" else "c[i] = a[i];"
  in
  let inner =
    if g.m > 0 then
      Printf.sprintf "for (int j = 0; j < %d; j++) { %s }" g.m body
    else body
  in
  Printf.sprintf
    "double a[128];\ndouble b[128];\ndouble c[256];\n\
     void f(void) {\n\
     #pragma omp parallel for schedule(static,%d)\n\
     for (int i = 0; i < %d; i++) { %s } }"
    g.chunk g.n inner

let gen_nest_gen =
  QCheck2.Gen.(
    map
      (fun (n, m, chunk, threads, stmt) -> { n; m; chunk; threads; stmt })
      (tup5 (int_range 1 24) (int_range 0 5) (int_range 1 4) (int_range 1 9)
         (int_range 0 5)))

let prop_random_nests_oracle =
  QCheck2.Test.make ~name:"fast = reference on random small nests" ~count:120
    ~print:(fun g -> source_of g)
    gen_nest_gen
    (fun g ->
      let checked =
        Minic.Typecheck.check_program
          (Minic.Parser.parse_program (source_of g))
      in
      let nest =
        Loopir.Lower.lower checked ~func:"f"
          ~params:[ ("num_threads", g.threads) ]
      in
      let cfg = Model.default_config ~threads:g.threads () in
      let go engine =
        Model.run ~record_samples:true ~engine cfg ~nest ~checked
      in
      let fast = go `Fast and refr = go `Reference in
      fast.Model.fs_cases = refr.Model.fs_cases
      && fast.Model.thread_steps = refr.Model.thread_steps
      && fast.Model.iterations_evaluated = refr.Model.iterations_evaluated
      && fast.Model.samples = refr.Model.samples)

(* ------------------------------------------------------------------ *)
(* Par_sweep                                                           *)
(* ------------------------------------------------------------------ *)

let test_par_sweep_deterministic () =
  let kernel = Kernels.Saxpy.kernel ~n:768 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", 4) ]
  in
  let eval chunk =
    let cfg =
      { (Model.default_config ~threads:4 ()) with Model.chunk = Some chunk }
    in
    (Model.run cfg ~nest ~checked).Model.fs_cases
  in
  let chunks = [ 1; 2; 3; 4; 8; 16 ] in
  let seq = Par_sweep.map ~domains:1 eval chunks in
  let par = Par_sweep.map ~domains:4 eval chunks in
  check (Alcotest.list Alcotest.int) "1 domain = 4 domains" seq par;
  check (Alcotest.list Alcotest.int) "matches List.map" (List.map eval chunks)
    seq

let test_par_sweep_order_and_mapi () =
  let xs = List.init 23 (fun i -> i) in
  check
    (Alcotest.list Alcotest.int)
    "map keeps input order"
    (List.map (fun x -> x * x) xs)
    (Par_sweep.map ~domains:5 (fun x -> x * x) xs);
  check
    (Alcotest.list Alcotest.int)
    "mapi passes indices"
    (List.mapi (fun i x -> (10 * i) + x) xs)
    (Par_sweep.mapi ~domains:3 (fun i x -> (10 * i) + x) xs)

exception Boom of int

let test_par_sweep_exceptions () =
  (match Par_sweep.map ~domains:4 (fun x -> if x = 7 then raise (Boom x) else x)
           (List.init 20 Fun.id)
   with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 7 -> ());
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Par_sweep.map: domains < 1") (fun () ->
      ignore (Par_sweep.map ~domains:0 Fun.id [ 1 ]))

let () =
  Alcotest.run "fastengine"
    [
      ( "oracle",
        [
          Alcotest.test_case "registry kernels, all configs" `Quick
            test_registry_oracle;
          Alcotest.test_case "ablation configs" `Quick
            test_ablation_configs_oracle;
          QCheck_alcotest.to_alcotest prop_random_nests_oracle;
        ] );
      ( "par_sweep",
        [
          Alcotest.test_case "deterministic across domains" `Quick
            test_par_sweep_deterministic;
          Alcotest.test_case "order and mapi" `Quick
            test_par_sweep_order_and_mapi;
          Alcotest.test_case "exception propagation" `Quick
            test_par_sweep_exceptions;
        ] );
    ]

(* Tests for the OpenMP scheduling model. *)

open Ompsched

let check = Alcotest.check
let fail = Alcotest.fail

let test_owner_round_robin () =
  let s = Schedule.make ~threads:3 ~chunk:2 ~total:12 in
  (* chunks: [0,1]->t0 [2,3]->t1 [4,5]->t2 [6,7]->t0 ... *)
  check Alcotest.int "iter 0" 0 (Schedule.owner s 0);
  check Alcotest.int "iter 1" 0 (Schedule.owner s 1);
  check Alcotest.int "iter 2" 1 (Schedule.owner s 2);
  check Alcotest.int "iter 5" 2 (Schedule.owner s 5);
  check Alcotest.int "iter 6 wraps" 0 (Schedule.owner s 6);
  check Alcotest.int "chunk run of 5" 0 (Schedule.chunk_run_of_iter s 5);
  check Alcotest.int "chunk run of 6" 1 (Schedule.chunk_run_of_iter s 6)

let test_iters_of_thread () =
  let s = Schedule.make ~threads:2 ~chunk:2 ~total:10 in
  check (Alcotest.list Alcotest.int) "thread 0" [ 0; 1; 4; 5; 8; 9 ]
    (Schedule.iters_of_thread s ~tid:0);
  check (Alcotest.list Alcotest.int) "thread 1" [ 2; 3; 6; 7 ]
    (Schedule.iters_of_thread s ~tid:1)

let test_nth_iter () =
  let s = Schedule.make ~threads:2 ~chunk:2 ~total:10 in
  check (Alcotest.option Alcotest.int) "t0 k2" (Some 4)
    (Schedule.nth_iter_of_thread s ~tid:0 2);
  check (Alcotest.option Alcotest.int) "t1 past end" None
    (Schedule.nth_iter_of_thread s ~tid:1 4);
  check (Alcotest.option Alcotest.int) "bad tid" None
    (Schedule.nth_iter_of_thread s ~tid:7 0)

let test_counts () =
  let s = Schedule.make ~threads:2 ~chunk:2 ~total:10 in
  check Alcotest.int "t0" 6 (Schedule.count_of_thread s ~tid:0);
  check Alcotest.int "t1" 4 (Schedule.count_of_thread s ~tid:1);
  check Alcotest.int "max steps" 6 (Schedule.max_steps_per_thread s)

let test_block_chunk () =
  check Alcotest.int "even" 25 (Schedule.block_chunk ~threads:4 ~total:100);
  check Alcotest.int "uneven rounds up" 26
    (Schedule.block_chunk ~threads:4 ~total:101);
  check Alcotest.int "never zero" 1 (Schedule.block_chunk ~threads:8 ~total:0);
  (* with the block chunk every thread gets at most one chunk *)
  let total = 101 and threads = 4 in
  let s =
    Schedule.make ~threads ~chunk:(Schedule.block_chunk ~threads ~total) ~total
  in
  check Alcotest.int "one run" 1 (Schedule.chunk_runs_total s);
  check Alcotest.bool "contiguous per thread" true
    (List.for_all
       (fun tid ->
         match Schedule.iters_of_thread s ~tid with
         | [] -> true
         | first :: _ as l ->
             List.mapi (fun k _ -> first + k) l = l)
       (List.init threads (fun t -> t)))

let test_chunk_runs_total () =
  let s = Schedule.make ~threads:4 ~chunk:3 ~total:100 in
  (* 100 / (4*3) = 8.33 -> 9 *)
  check Alcotest.int "runs" 9 (Schedule.chunk_runs_total s)

let test_degenerate () =
  let s = Schedule.make ~threads:8 ~chunk:4 ~total:0 in
  check Alcotest.int "no iters" 0 (Schedule.count_of_thread s ~tid:0);
  check Alcotest.int "no runs" 0 (Schedule.chunk_runs_total s);
  match Schedule.make ~threads:0 ~chunk:1 ~total:1 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "threads=0 must be rejected"

(* qcheck: the schedule partitions 0..total-1 exactly *)
let sched_gen =
  QCheck2.Gen.(
    map3
      (fun threads chunk total ->
        Schedule.make ~threads:(1 + (abs threads mod 8))
          ~chunk:(1 + (abs chunk mod 7))
          ~total:(abs total mod 200))
      small_int small_int small_int)

let prop_partition =
  QCheck2.Test.make ~name:"iters_of_thread partitions the iteration space"
    ~count:200 sched_gen (fun s ->
      let all =
        List.concat
          (List.init s.Schedule.threads (fun tid ->
               Schedule.iters_of_thread s ~tid))
      in
      let sorted = List.sort compare all in
      sorted = List.init s.Schedule.total (fun i -> i))

let prop_owner_consistent =
  QCheck2.Test.make ~name:"owner agrees with iters_of_thread" ~count:200
    sched_gen (fun s ->
      List.for_all
        (fun tid ->
          List.for_all
            (fun q -> Schedule.owner s q = tid)
            (Schedule.iters_of_thread s ~tid))
        (List.init s.Schedule.threads (fun t -> t)))

let prop_counts_sum =
  QCheck2.Test.make ~name:"count_of_thread sums to total" ~count:200 sched_gen
    (fun s ->
      List.fold_left
        (fun acc tid -> acc + Schedule.count_of_thread s ~tid)
        0
        (List.init s.Schedule.threads (fun t -> t))
      = s.Schedule.total)

let prop_nth_matches_list =
  QCheck2.Test.make ~name:"nth_iter_of_thread enumerates iters_of_thread"
    ~count:200 sched_gen (fun s ->
      List.for_all
        (fun tid ->
          let l = Schedule.iters_of_thread s ~tid in
          List.mapi (fun k _ -> Schedule.nth_iter_of_thread s ~tid k) l
          = List.map Option.some l
          && Schedule.nth_iter_of_thread s ~tid (List.length l) = None)
        (List.init s.Schedule.threads (fun t -> t)))

let test_team () =
  let t = Team.make ~threads:24 () in
  check Alcotest.int "socket of 0" 0 (Team.socket_of t 0);
  check Alcotest.int "socket of 12" 1 (Team.socket_of t 12);
  check Alcotest.bool "share" true (Team.share_socket t 0 11);
  check Alcotest.bool "differ" false (Team.share_socket t 11 12);
  (match Team.make ~threads:49 () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "too many threads");
  match Team.make ~threads:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> fail "zero threads"

let test_overhead () =
  let o = Overhead.default in
  let a = Overhead.parallel_overhead_cycles o ~threads:2 ~chunks_per_thread:1 in
  let b = Overhead.parallel_overhead_cycles o ~threads:8 ~chunks_per_thread:1 in
  check Alcotest.bool "grows with team" true (b > a);
  let c = Overhead.parallel_overhead_cycles o ~threads:2 ~chunks_per_thread:9 in
  check Alcotest.bool "grows with chunks" true (c > a);
  check Alcotest.int "loop overhead linear"
    (10 * o.Overhead.loop_per_iter)
    (Overhead.loop_overhead_cycles o ~iters:10)

let () =
  Alcotest.run "ompsched"
    [
      ( "schedule",
        [
          Alcotest.test_case "round robin" `Quick test_owner_round_robin;
          Alcotest.test_case "iters of thread" `Quick test_iters_of_thread;
          Alcotest.test_case "nth iter" `Quick test_nth_iter;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "block chunk" `Quick test_block_chunk;
          Alcotest.test_case "chunk runs" `Quick test_chunk_runs_total;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
          QCheck_alcotest.to_alcotest prop_partition;
          QCheck_alcotest.to_alcotest prop_owner_consistent;
          QCheck_alcotest.to_alcotest prop_counts_sum;
          QCheck_alcotest.to_alcotest prop_nth_matches_list;
        ] );
      ("team", [ Alcotest.test_case "sockets" `Quick test_team ]);
      ("overhead", [ Alcotest.test_case "formulas" `Quick test_overhead ]);
    ]

(* Cross-library integration tests.

   The strongest invariant in the repo: for every kernel, the compile-time
   side (lowered affine references evaluated over the iteration space) and
   the runtime side (the interpreter's actual loads/stores) must touch the
   SAME multiset of (address, size, kind) — the model reasons about exactly
   the accesses the program performs.  Any frontend, lowering, layout or
   interpreter bug breaks the equality. *)

let check = Alcotest.check
let fail = Alcotest.fail

let checked_of src =
  Minic.Typecheck.check_program (Minic.Parser.parse_program src)

(* enumerate the nest's iteration space and collect every reference's
   concrete (addr, size, write) with multiplicity *)
let model_accesses ~threads (checked : Minic.Typecheck.checked) ~func =
  let params = [ ("num_threads", threads) ] in
  let nest = Loopir.Lower.lower checked ~func ~params in
  let layout = Loopir.Layout.make checked in
  let tbl = Hashtbl.create 1024 in
  let bump key =
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let loops = Array.of_list nest.Loopir.Loop_nest.loops in
  let values = Hashtbl.create 8 in
  let env v =
    match Hashtbl.find_opt values v with
    | Some n -> Some n
    | None -> List.assoc_opt v params
  in
  let rec walk level =
    if level = Array.length loops then
      List.iter
        (fun (r : Loopir.Array_ref.t) ->
          let addr =
            Loopir.Array_ref.byte_addr
              ~addr_of_base:(Loopir.Layout.addr_of layout)
              ~env:(fun v -> Option.get (env v))
              r
          in
          bump (addr, r.Loopir.Array_ref.size_bytes, Loopir.Array_ref.is_write r))
        nest.Loopir.Loop_nest.refs
    else begin
      let loop = loops.(level) in
      let lo = Loopir.Expr_eval.eval env loop.Loopir.Loop_nest.lower in
      let hi = Loopir.Expr_eval.eval env loop.Loopir.Loop_nest.upper_excl in
      let v = ref lo in
      while !v < hi do
        Hashtbl.replace values loop.Loopir.Loop_nest.var !v;
        walk (level + 1);
        v := !v + loop.Loopir.Loop_nest.step
      done;
      Hashtbl.remove values loop.Loopir.Loop_nest.var
    end
  in
  walk 0;
  tbl

(* run the interpreter and collect the same multiset from the hook *)
let interp_accesses ~threads (checked : Minic.Typecheck.checked) ~func ~init =
  let tbl = Hashtbl.create 1024 in
  let recording = ref false in
  let sink =
    {
      Execsim.Interp.null_sink with
      Execsim.Interp.mem_access =
        (fun ~tid:_ ~addr ~size ~write ->
          if !recording then begin
            let key = (addr, size, write) in
            Hashtbl.replace tbl key
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
          end);
    }
  in
  let it = Execsim.Interp.create ~threads ~sink checked in
  Option.iter (fun f -> Execsim.Interp.exec it ~func:f) init;
  recording := true;
  Execsim.Interp.exec it ~func;
  tbl

let tables_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun key count ok -> ok && Hashtbl.find_opt b key = Some count)
       a true

let diff_summary a b =
  let missing = ref 0 and extra = ref 0 in
  Hashtbl.iter
    (fun key c ->
      let c' = Option.value ~default:0 (Hashtbl.find_opt b key) in
      if c > c' then missing := !missing + (c - c'))
    a;
  Hashtbl.iter
    (fun key c ->
      let c' = Option.value ~default:0 (Hashtbl.find_opt a key) in
      if c > c' then extra := !extra + (c - c'))
    b;
  Printf.sprintf "%d accesses only in model, %d only in interpreter" !missing
    !extra

let assert_access_agreement ~threads (kernel : Kernels.Kernel.t) =
  let checked = Kernels.Kernel.parse kernel in
  let model =
    model_accesses ~threads checked ~func:kernel.Kernels.Kernel.func
  in
  let dynamic =
    interp_accesses ~threads checked ~func:kernel.Kernels.Kernel.func
      ~init:kernel.Kernels.Kernel.init_func
  in
  if not (tables_equal model dynamic) then
    fail
      (Printf.sprintf "%s (T=%d): %s" kernel.Kernels.Kernel.name threads
         (diff_summary model dynamic));
  let total = Hashtbl.fold (fun _ c acc -> acc + c) model 0 in
  check Alcotest.bool
    (kernel.Kernels.Kernel.name ^ " nonempty")
    true (total > 0)

let test_access_agreement_kernels () =
  List.iter
    (fun (kernel, threads) -> assert_access_agreement ~threads kernel)
    [
      (Kernels.Heat.kernel ~rows:6 ~cols:34 (), 4);
      (Kernels.Dft.kernel ~freqs:3 ~samples:40 (), 4);
      (Kernels.Linreg_kernel.kernel ~nacc:6 ~m:24 (), 3);
      (Kernels.Saxpy.kernel ~n:48 (), 4);
      (Kernels.Stencil1d.kernel ~n:42 ~steps:3 (), 4);
      (Kernels.Matvec.kernel ~rows:20 ~cols:12 (), 4);
      (Kernels.Transpose.kernel ~n:24 (), 4);
    ]

let test_access_agreement_struct_and_if () =
  (* conditionals: the model is control-flow-insensitive and counts both
     branches, so restrict to a kernel whose branches touch the same
     locations *)
  let src =
    {|struct cell { double v; int tag; };
struct cell grid[40];
double out[40];
void init(void) {
  int i;
  for (i = 0; i < 40; i++) { grid[i].v = 0.5 * i; grid[i].tag = i; }
}
void f(void) {
  int i;
  #pragma omp parallel for private(i) schedule(static,2)
  for (i = 0; i < 40; i++) {
    out[i] = grid[i].v * 2.0 + grid[i].tag;
  }
}
|}
  in
  let checked = checked_of src in
  let model = model_accesses ~threads:4 checked ~func:"f" in
  let dynamic =
    interp_accesses ~threads:4 checked ~func:"f" ~init:(Some "init")
  in
  if not (tables_equal model dynamic) then
    fail (diff_summary model dynamic)

let test_access_agreement_after_eliminate () =
  (* the padding transform preserves the access structure: re-lowering the
     transformed program still matches its interpreter *)
  let kernel = Kernels.Linreg_kernel.kernel ~nacc:8 ~m:16 () in
  let checked = Kernels.Kernel.parse kernel in
  let after, _ = Fsmodel.Eliminate.eliminate ~threads:4 ~func:"linear_regression" checked in
  let model = model_accesses ~threads:4 after ~func:"linear_regression" in
  let dynamic =
    interp_accesses ~threads:4 after ~func:"linear_regression"
      ~init:(Some "init")
  in
  if not (tables_equal model dynamic) then fail (diff_summary model dynamic)

let test_access_set_invariant_under_schedule () =
  (* the schedule changes WHO runs an iteration, never WHAT it accesses:
     the interpreter's access multiset is identical for static, dynamic and
     guided, and matches the model's enumeration of the iteration space *)
  let src kind =
    Printf.sprintf
      {|double x[96];
double y[96];
void f(void) {
  int i;
  #pragma omp parallel for private(i) schedule(%s)
  for (i = 0; i < 96; i++) {
    y[i] += 2.0 * x[i];
  }
}
|}
      kind
  in
  let reference = model_accesses ~threads:4 (checked_of (src "static,1")) ~func:"f" in
  List.iter
    (fun kind ->
      let dynamic =
        interp_accesses ~threads:4 (checked_of (src kind)) ~func:"f" ~init:None
      in
      if not (tables_equal reference dynamic) then
        fail (kind ^ ": " ^ diff_summary reference dynamic))
    [ "static,1"; "static,5"; "static"; "dynamic,1"; "dynamic,3"; "guided" ]

(* The model's iteration count must equal what the interpreter executes:
   cross-check via total access counts (iterations x refs). *)
let test_iteration_counts () =
  List.iter
    (fun threads ->
      let kernel = Kernels.Dft.kernel ~freqs:3 ~samples:48 () in
      let checked = Kernels.Kernel.parse kernel in
      let nest =
        Loopir.Lower.lower checked ~func:"dft"
          ~params:[ ("num_threads", threads) ]
      in
      let cfg = Fsmodel.Model.default_config ~threads () in
      let r = Fsmodel.Model.run cfg ~nest ~checked in
      let dynamic =
        interp_accesses ~threads checked ~func:"dft" ~init:None
      in
      let traced = Hashtbl.fold (fun _ c acc -> acc + c) dynamic 0 in
      check Alcotest.int
        (Printf.sprintf "iters x refs = traced (T=%d)" threads)
        (r.Fsmodel.Model.iterations_evaluated
        * List.length nest.Loopir.Loop_nest.refs)
        traced)
    [ 1; 3; 4 ]

(* The model on the simulator's own FS classification: when the model says
   zero FS cases, the simulator must report zero false-sharing misses
   after a cold start. *)
let test_zero_fs_agreement () =
  let kernel = Kernels.Saxpy.kernel ~n:512 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:"saxpy"
      ~params:[ ("num_threads", 4) ]
  in
  let cfg =
    { (Fsmodel.Model.default_config ~threads:4 ()) with
      Fsmodel.Model.chunk = Some 8 }
  in
  let r = Fsmodel.Model.run cfg ~nest ~checked in
  check Alcotest.int "model says none" 0 r.Fsmodel.Model.fs_cases;
  let m = Execsim.Run.measure ~run_init:false ~threads:4 ~chunk:8 kernel in
  check Alcotest.int "simulator agrees" 0
    m.Execsim.Run.stats.Cachesim.Stats.coherence_false

(* ------------------------------------------------------------------ *)
(* Randomized kernels: Model vs a brute-force oracle                    *)
(*                                                                      *)
(* Generate small random 2-level kernels (random affine subscripts,     *)
(* random access types), then count FS cases two ways:                  *)
(*   - the production path: Lower -> Ownership (compiled affine) ->     *)
(*     Fs_counter (bitmask) driven by Model.run;                        *)
(*   - an oracle written here: direct evaluation of the source          *)
(*     subscript expressions with Expr_eval, per-iteration dedup done   *)
(*     with sorted lists, phi-counting with the reference Detect over   *)
(*     Thread_cache_state.                                              *)
(* Any disagreement flags a bug in lowering, affine compilation,        *)
(* ownership dedup, eviction bookkeeping, or the bitmask index.         *)
(* ------------------------------------------------------------------ *)

type rand_ref = { arr : int; c_i : int; c_j : int; c0 : int; is_write : bool }

type rand_kernel = {
  trip_i : int;  (* parallel loop *)
  trip_j : int;  (* inner loop *)
  arr_sizes : int array;
  krefs : rand_ref list;
  threads : int;
  chunk : int;
}

let rand_kernel_gen =
  let open QCheck2.Gen in
  let* trip_i = int_range 2 7 in
  let* trip_j = int_range 1 5 in
  let* n_arrays = int_range 1 3 in
  let* arr_sizes = array_size (return n_arrays) (int_range 40 90) in
  let ref_gen =
    let* arr = int_range 0 (n_arrays - 1) in
    let* c_i = int_range 0 3 in
    let* c_j = int_range 0 2 in
    let* c0 = int_range 0 4 in
    let* is_write = bool in
    (* keep the maximum index in bounds *)
    let maxidx = (c_i * (trip_i - 1)) + (c_j * (trip_j - 1)) + c0 in
    if maxidx < arr_sizes.(arr) then
      return (Some { arr; c_i; c_j; c0; is_write })
    else return None
  in
  let* raw = list_size (int_range 1 4) ref_gen in
  let krefs = List.filter_map Fun.id raw in
  let* threads = int_range 1 4 in
  let* chunk = int_range 1 3 in
  return { trip_i; trip_j; arr_sizes; krefs; threads; chunk }

let subscript r = Printf.sprintf "%d*i + %d*j + %d" r.c_i r.c_j r.c0

let source_of_rand k =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun a n -> Buffer.add_string buf (Printf.sprintf "double a%d[%d];\n" a n))
    k.arr_sizes;
  Buffer.add_string buf "void f(void) {\nint i;\nint j;\n";
  Buffer.add_string buf
    (Printf.sprintf
       "#pragma omp parallel for private(i,j) schedule(static,%d)\n" k.chunk);
  Buffer.add_string buf
    (Printf.sprintf "for (i = 0; i < %d; i++) {\nfor (j = 0; j < %d; j++) {\n"
       k.trip_i k.trip_j);
  List.iter
    (fun r ->
      if r.is_write then
        Buffer.add_string buf
          (Printf.sprintf "a%d[%s] = 1.0;\n" r.arr (subscript r))
      else
        Buffer.add_string buf
          (Printf.sprintf "a%d[%s];\n" r.arr (subscript r)))
    k.krefs;
  Buffer.add_string buf "}\n}\n}\n";
  Buffer.contents buf

(* the oracle: no Affine, no Ownership, no Fs_counter *)
let oracle_fs (k : rand_kernel) checked =
  let layout = Loopir.Layout.make checked in
  let arch = Archspec.Arch.paper_machine in
  let capacity = Archspec.Cache_geom.lines arch.Archspec.Arch.l1 in
  let states =
    Array.init k.threads (fun _ ->
        Fsmodel.Thread_cache_state.create ~capacity)
  in
  let line_of r i j =
    let base = Loopir.Layout.addr_of layout (Printf.sprintf "a%d" r.arr) in
    (base + (8 * ((r.c_i * i) + (r.c_j * j) + r.c0))) / 64
  in
  let fs = ref 0 in
  let sched =
    Ompsched.Schedule.make ~threads:k.threads ~chunk:k.chunk ~total:k.trip_i
  in
  let steps = Ompsched.Schedule.max_steps_per_thread sched * k.trip_j in
  for s = 0 to steps - 1 do
    let k_par = s / k.trip_j and j = s mod k.trip_j in
    for tid = 0 to k.threads - 1 do
      match Ompsched.Schedule.nth_iter_of_thread sched ~tid k_par with
      | None -> ()
      | Some i ->
          (* per-iteration ownership list: dedup lines, writes dominate,
             first-touch order *)
          let entries =
            List.fold_left
              (fun acc r ->
                let line = line_of r i j in
                if List.mem_assoc line acc then
                  List.map
                    (fun (l, w) ->
                      if l = line then (l, w || r.is_write) else (l, w))
                    acc
                else acc @ [ (line, r.is_write) ])
              [] k.krefs
          in
          List.iter
            (fun (line, written) ->
              fs := !fs + Fsmodel.Detect.fs_cases_for_insert ~states ~me:tid ~line;
              ignore
                (Fsmodel.Thread_cache_state.insert states.(tid) ~line ~written))
            entries
    done
  done;
  !fs

let prop_model_matches_oracle =
  QCheck2.Test.make ~name:"Model.run equals the brute-force oracle" ~count:200
    ~print:source_of_rand rand_kernel_gen (fun k ->
      match
        let src = source_of_rand k in
        let checked = checked_of src in
        if k.krefs = [] then true
        else begin
          let nest =
            Loopir.Lower.lower checked ~func:"f"
              ~params:[ ("num_threads", k.threads) ]
          in
          let cfg = Fsmodel.Model.default_config ~threads:k.threads () in
          let r = Fsmodel.Model.run cfg ~nest ~checked in
          r.Fsmodel.Model.fs_cases = oracle_fs k checked
        end
      with
      | ok -> ok
      | exception Loopir.Lower.Lower_error _ ->
          (* kernels whose only refs are reads still lower fine; any other
             lowering failure is a generator bug worth seeing *)
          false)

(* End-to-end: CLI-style pipeline from raw source text to a report. *)
let test_pipeline_from_source () =
  let src =
    {|#define N 256
double data[N];
double acc[32];
void kern(void) {
  int b;
  int i;
  #pragma omp parallel for private(b,i) schedule(static,1)
  for (b = 0; b < 32; b++) {
    for (i = 0; i < N / num_threads; i++) {
      acc[b] += data[i];
    }
  }
}
|}
  in
  let checked = checked_of src in
  let a =
    Fsmodel.Overhead_percent.analyze ~threads:8 ~fs_chunk:1 ~nfs_chunk:8
      ~func:"kern" checked
  in
  check Alcotest.bool "fs found" true (a.Fsmodel.Overhead_percent.n_fs > 0);
  check Alcotest.int "none with line chunks" 0
    a.Fsmodel.Overhead_percent.n_nfs;
  let advice = Fsmodel.Advisor.advise ~threads:8 ~func:"kern" checked in
  check (Alcotest.option Alcotest.int) "advice" (Some 8)
    advice.Fsmodel.Advisor.best_chunk;
  let after, _ = Fsmodel.Eliminate.eliminate ~threads:8 ~func:"kern" checked in
  let a' =
    Fsmodel.Overhead_percent.analyze ~threads:8 ~fs_chunk:1 ~nfs_chunk:8
      ~func:"kern" after
  in
  check Alcotest.int "eliminated" 0 a'.Fsmodel.Overhead_percent.n_fs

let () =
  Alcotest.run "integration"
    [
      ( "model = interpreter",
        [
          Alcotest.test_case "access multisets agree (all kernels)" `Quick
            test_access_agreement_kernels;
          Alcotest.test_case "structs and scaling" `Quick
            test_access_agreement_struct_and_if;
          Alcotest.test_case "after elimination" `Quick
            test_access_agreement_after_eliminate;
          Alcotest.test_case "schedule invariance" `Quick
            test_access_set_invariant_under_schedule;
          Alcotest.test_case "iteration counts" `Quick test_iteration_counts;
          Alcotest.test_case "zero-FS agreement" `Quick
            test_zero_fs_agreement;
          QCheck_alcotest.to_alcotest prop_model_matches_oracle;
        ] );
      ( "end to end",
        [ Alcotest.test_case "source to report" `Quick
            test_pipeline_from_source ] );
    ]

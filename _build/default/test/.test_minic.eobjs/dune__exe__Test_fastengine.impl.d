test/test_fastengine.ml: Alcotest Format Fsmodel Fun Kernels List Loopir Minic Model Par_sweep Printf QCheck2 QCheck_alcotest

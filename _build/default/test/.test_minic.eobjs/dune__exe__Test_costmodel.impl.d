test/test_costmodel.ml: Alcotest Archspec Cache_model Cachesim Contention Costmodel Kernels List Loopir Minic Op_count Option Processor_model Tlb_model Total_cost

test/test_loopir.mli:

test/test_kernels.ml: Alcotest Execsim Fsmodel Kernels List Loopir Minic Option Printf

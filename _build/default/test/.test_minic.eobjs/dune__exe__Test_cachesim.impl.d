test/test_cachesim.ml: Alcotest Archspec Cachesim Coherence Format Fun List Lru_stack Private_cache QCheck2 QCheck_alcotest Set_assoc Stats String

test/test_cachesim.ml: Alcotest Archspec Array Bitset Cachesim Coherence Format Fun Hashtbl Int_table List Lru_stack Option Private_cache QCheck2 QCheck_alcotest Set_assoc Stats String

test/test_loopir.ml: Affine Alcotest Array_ref Expr_eval Kernels Layout List Loop_nest Loopir Lower Minic QCheck2 QCheck_alcotest Ref_group

test/test_fsmodel.mli:

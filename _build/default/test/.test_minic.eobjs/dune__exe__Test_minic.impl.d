test/test_minic.ml: Alcotest Ast Ctypes Lexer List Minic Option Parser Preproc Pretty Printf QCheck2 QCheck_alcotest String Token Typecheck

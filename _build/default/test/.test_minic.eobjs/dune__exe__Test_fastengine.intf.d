test/test_fastengine.mli:

test/test_integration.ml: Alcotest Archspec Array Buffer Cachesim Execsim Fsmodel Fun Hashtbl Kernels List Loopir Minic Ompsched Option Printf QCheck2 QCheck_alcotest

test/test_ompsched.mli:

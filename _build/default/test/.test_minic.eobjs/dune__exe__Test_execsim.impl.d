test/test_execsim.ml: Alcotest Array Cachesim Execsim Float Format Fsmodel Interp Kernels List Loopir Mem Minic Printf Run Value

test/test_baseline.ml: Alcotest Baseline Kernels List

test/test_ompsched.ml: Alcotest List Ompsched Option Overhead QCheck2 QCheck_alcotest Schedule Team

(* Tests for the paper's core contribution: ownership lists, per-thread
   cache states, φ-detection (fast path vs reference), the full model, the
   linear-regression predictor, overhead normalization, and the advisor. *)

open Fsmodel

let check = Alcotest.check
let fail = Alcotest.fail

let checked_of src =
  Minic.Typecheck.check_program (Minic.Parser.parse_program src)

let lower ?(threads = 2) ~func checked =
  Loopir.Lower.lower checked ~func ~params:[ ("num_threads", threads) ]

(* a minimal write-only kernel: 16 doubles = 2 cache lines *)
let writer_src =
  "double y[16];\nvoid f(void) {\n#pragma omp parallel for schedule(static,1)\nfor (int i = 0; i < 16; i++) { y[i] = 1.0; } }"

(* ------------------------------------------------------------------ *)
(* Ownership                                                           *)
(* ------------------------------------------------------------------ *)

let ownership_of ?(params = [ ("num_threads", 2) ]) ~func src =
  let checked = checked_of src in
  let nest = Loopir.Lower.lower checked ~func ~params in
  let layout = Loopir.Layout.make ~line_bytes:64 checked in
  let var_slots =
    List.map (fun (l : Loopir.Loop_nest.loop) -> l.Loopir.Loop_nest.var)
      nest.Loopir.Loop_nest.loops
  in
  Ownership.compile ~layout ~line_bytes:64 ~params ~var_slots nest

let test_ownership_dedup_write_dominates () =
  (* y[i] += x[i]: read + write of the same line dedups to one written
     entry; x is a separate line *)
  let own =
    ownership_of ~func:"f"
      "double x[8];\ndouble y[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { y[i] += x[i]; } }"
  in
  let entries = Ownership.lines own [| 0 |] in
  check Alcotest.int "two lines" 2 (List.length entries);
  let writes = List.filter (fun e -> e.Ownership.written) entries in
  check Alcotest.int "one written" 1 (List.length writes);
  check Alcotest.int "refs compiled" 3 (Ownership.ref_count own)

let test_ownership_moves_with_index () =
  let own = ownership_of ~func:"f" writer_src in
  let l0 = (List.hd (Ownership.lines own [| 0 |])).Ownership.line in
  let l7 = (List.hd (Ownership.lines own [| 7 |])).Ownership.line in
  let l8 = (List.hd (Ownership.lines own [| 8 |])).Ownership.line in
  check Alcotest.int "same line for 0..7" l0 l7;
  check Alcotest.int "next line at 8" (l0 + 1) l8

let test_ownership_straddle () =
  (* a double at bytes 60..67 straddles two lines *)
  let own =
    ownership_of ~func:"f"
      "char pad[60];\ndouble v[2];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 2; i++) { v[i] = 1.0; } }"
  in
  (* pad occupies line 0; v starts at 64 (aligned) — use index to check
     a straddle is impossible here because layout aligns bases; instead
     check via field arithmetic that size spanning works: v[0] at 64..72
     is one line *)
  let e = Ownership.lines own [| 0 |] in
  check Alcotest.int "aligned double, one line" 1 (List.length e)

let test_ownership_param_folding () =
  (* num_threads = 2 folds into the offset: element shift of 4*2 = 8
     elements = exactly one 64-byte line *)
  let own =
    ownership_of ~params:[ ("num_threads", 2) ] ~func:"f"
      "double y[32];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { y[i + 4 * num_threads] = 1.0; } }"
  in
  (* index 0 accesses element 8 => second line of y *)
  let e = List.hd (Ownership.lines own [| 0 |]) in
  let own0 =
    ownership_of ~func:"f"
      "double y[32];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { y[i] = 1.0; } }"
  in
  let e0 = List.hd (Ownership.lines own0 [| 0 |]) in
  check Alcotest.int "offset by one line" (e0.Ownership.line + 1)
    e.Ownership.line

(* ------------------------------------------------------------------ *)
(* Thread_cache_state                                                  *)
(* ------------------------------------------------------------------ *)

let test_state_written_persists () =
  let s = Thread_cache_state.create ~capacity:4 in
  ignore (Thread_cache_state.insert s ~line:1 ~written:true);
  ignore (Thread_cache_state.insert s ~line:1 ~written:false);
  check Alcotest.bool "still written" true
    (Thread_cache_state.holds_modified s 1)

let test_state_eviction () =
  let s = Thread_cache_state.create ~capacity:2 in
  ignore (Thread_cache_state.insert s ~line:1 ~written:true);
  ignore (Thread_cache_state.insert s ~line:2 ~written:false);
  (match Thread_cache_state.insert s ~line:3 ~written:false with
  | Some (1, true) -> ()
  | _ -> fail "line 1 (written) evicted");
  check Alcotest.bool "1 gone" false (Thread_cache_state.holds s 1);
  check Alcotest.bool "invalidate 2" true (Thread_cache_state.invalidate s 2);
  check Alcotest.int "size" 1 (Thread_cache_state.size s)

(* ------------------------------------------------------------------ *)
(* Fs_counter fast path == Detect reference                            *)
(* ------------------------------------------------------------------ *)

let stream_gen =
  QCheck2.Gen.(
    list_size (int_range 1 200)
      (map3
         (fun me line written -> (abs me mod 4, abs line mod 8, written))
         small_int small_int bool))

let prop_counter_matches_detect =
  QCheck2.Test.make
    ~name:"Fs_counter bitmask fast path matches the Detect reference"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 6) stream_gen)
    (fun (cap, ops) ->
      let fast = Fs_counter.create ~threads:4 ~capacity:cap in
      let states =
        Array.init 4 (fun _ -> Thread_cache_state.create ~capacity:cap)
      in
      List.for_all
        (fun (me, line, written) ->
          let f1 = Fs_counter.process fast ~me ~line ~written in
          let f2 = Detect.fs_cases_for_insert ~states ~me ~line in
          ignore (Thread_cache_state.insert states.(me) ~line ~written);
          f1 = f2)
        ops)

let test_detect_counts_only_modified () =
  let states = Array.init 3 (fun _ -> Thread_cache_state.create ~capacity:8) in
  ignore (Thread_cache_state.insert states.(1) ~line:5 ~written:false);
  ignore (Thread_cache_state.insert states.(2) ~line:5 ~written:true);
  check Alcotest.int "only the writer counts" 1
    (Detect.fs_cases_for_insert ~states ~me:0 ~line:5);
  check Alcotest.int "mask excludes self" 1
    (Detect.fs_cases_for_insert ~states ~me:1 ~line:5);
  check Alcotest.int "self write not counted" 0
    (Detect.fs_cases_for_insert ~states ~me:2 ~line:5)

(* ------------------------------------------------------------------ *)
(* Model: hand-computed cases                                          *)
(* ------------------------------------------------------------------ *)

let run_model ?(threads = 2) ?chunk ?(stack = Model.Level_l1)
    ?(invalidate = false) ~func src =
  let checked = checked_of src in
  let nest = lower ~threads ~func checked in
  let cfg =
    {
      (Model.default_config ~threads ()) with
      Model.chunk;
      stack;
      invalidate_on_write = invalidate;
    }
  in
  Model.run cfg ~nest ~checked

let test_model_two_thread_writer () =
  (* worked out by hand: 2 threads, chunk 1, 16 writes over 2 lines.
     Per line: first lockstep step contributes 0 (t0) + 1 (t1), the next
     three steps 2 each => 7 per line, 14 total. *)
  let r = run_model ~threads:2 ~func:"f" writer_src in
  check Alcotest.int "fs cases" 14 r.Model.fs_cases;
  check Alcotest.int "iterations" 16 r.Model.iterations_evaluated;
  check Alcotest.int "steps" 8 r.Model.thread_steps;
  check Alcotest.int "chunk runs" 8 r.Model.chunk_runs

let test_model_no_fs_with_line_chunk () =
  (* chunk 8 = one full line per thread: disjoint lines, zero FS *)
  let r = run_model ~threads:2 ~chunk:8 ~func:"f" writer_src in
  check Alcotest.int "no fs" 0 r.Model.fs_cases

let test_model_single_thread_no_fs () =
  let r = run_model ~threads:1 ~func:"f" writer_src in
  check Alcotest.int "no fs" 0 r.Model.fs_cases

let test_model_reads_never_fs () =
  let src =
    "double x[16];\ndouble s[16];\nvoid f(void) {\n#pragma omp parallel for private(t)\nfor (int i = 0; i < 16; i++) { s[i] = x[i] + x[0]; } }"
  in
  (* s writes do FS, but make x read-only: count with a read-only body *)
  let src_ro =
    "double x[16];\nint sink;\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 16; i++) { if (x[i] > 100.0) { sink = 1; } } }"
  in
  ignore src;
  let r = run_model ~threads:4 ~func:"f" src_ro in
  (* x reads shared but never modified; sink written only under a false
     condition — the model is control-flow-insensitive so sink IS counted.
     Use a truly read-only variant instead: *)
  check Alcotest.bool "fs only from sink writes" true (r.Model.fs_cases >= 0);
  let src_pure =
    "double x[16];\nvoid f(void) {\n#pragma omp parallel for private(acc)\nfor (int i = 0; i < 16; i++) { int acc = x[i] > 0.0; } }"
  in
  let r2 = run_model ~threads:4 ~func:"f" src_pure in
  check Alcotest.int "read-only loop has no fs" 0 r2.Model.fs_cases

let test_model_invalidate_ablation_reduces () =
  let base = run_model ~threads:4 ~func:"f" writer_src in
  let abl = run_model ~threads:4 ~invalidate:true ~func:"f" writer_src in
  check Alcotest.bool "ablation reduces or equals" true
    (abl.Model.fs_cases <= base.Model.fs_cases)

let test_model_unbounded_counts_at_least_l1 () =
  let k = Kernels.Heat.kernel ~rows:6 ~cols:130 () in
  let checked = Kernels.Kernel.parse k in
  let nest = lower ~threads:4 ~func:"heat_step" checked in
  let cfg = Model.default_config ~threads:4 () in
  let l1 = Model.run cfg ~nest ~checked in
  let unb =
    Model.run { cfg with Model.stack = Model.Unbounded } ~nest ~checked
  in
  check Alcotest.bool "unbounded >= L1" true
    (unb.Model.fs_cases >= l1.Model.fs_cases)

let test_model_truncation_and_samples () =
  let checked = checked_of writer_src in
  let nest = lower ~threads:2 ~func:"f" checked in
  let cfg = Model.default_config ~threads:2 () in
  let r = Model.run ~max_chunk_runs:3 ~record_samples:true cfg ~nest ~checked in
  check Alcotest.bool "truncated" true r.Model.truncated;
  check Alcotest.int "3 runs" 3 r.Model.chunk_runs;
  check Alcotest.int "3 samples" 3 (List.length r.Model.samples);
  let cums = List.map (fun s -> s.Model.cumulative_fs) r.Model.samples in
  check Alcotest.bool "monotone" true
    (List.sort compare cums = cums)

let test_model_samples_full_run () =
  let checked = checked_of writer_src in
  let nest = lower ~threads:2 ~func:"f" checked in
  let cfg = Model.default_config ~threads:2 () in
  let r = Model.run ~record_samples:true cfg ~nest ~checked in
  check Alcotest.bool "not truncated" false r.Model.truncated;
  check Alcotest.int "8 samples" 8 (List.length r.Model.samples);
  (match List.rev r.Model.samples with
  | last :: _ ->
      check Alcotest.int "last sample = total" r.Model.fs_cases
        last.Model.cumulative_fs
  | [] -> fail "no samples")

let test_model_outer_sequential_loops () =
  (* cache states persist across regions: second region re-touches the
     same lines, so FS cases roughly double *)
  let src =
    "double y[16];\nvoid f(void) {\nint t;\nint i;\nfor (t = 0; t < 2; t++) {\n#pragma omp parallel for private(i) schedule(static,1)\nfor (i = 0; i < 16; i++) { y[i] = 1.0; } }\n}"
  in
  let one_region = run_model ~threads:2 ~func:"f" writer_src in
  let two_regions = run_model ~threads:2 ~func:"f" src in
  check Alcotest.int "iterations doubled" 32 two_regions.Model.iterations_evaluated;
  check Alcotest.bool "fs at least doubles" true
    (two_regions.Model.fs_cases >= 2 * one_region.Model.fs_cases)

let test_model_block_schedule_default () =
  (* without a schedule clause, OpenMP deals contiguous blocks: 16 doubles
     over 2 threads = one full line each, so no false sharing at all —
     unlike the round-robin chunk-1 version of the same loop *)
  let src =
    "double y[16];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 16; i++) { y[i] = 1.0; } }"
  in
  let r = run_model ~threads:2 ~func:"f" src in
  check Alcotest.int "block distribution has no fs" 0 r.Model.fs_cases;
  check Alcotest.int "one chunk run" 1 r.Model.chunk_runs;
  (* at 8 threads the 2-double blocks do share lines again *)
  let r8 = run_model ~threads:8 ~func:"f" src in
  check Alcotest.bool "8 small blocks share lines" true (r8.Model.fs_cases > 0)

let test_model_thread_guard () =
  let checked = checked_of writer_src in
  let nest = lower ~threads:2 ~func:"f" checked in
  (* thread counts above the single-word bitmask width (62) now run on the
     Bitset path; results must agree with the reference engine *)
  let cfg = { (Model.default_config ~threads:2 ()) with Model.threads = 63 } in
  let fast = Model.run ~engine:`Fast cfg ~nest ~checked in
  let slow = Model.run ~engine:`Reference cfg ~nest ~checked in
  check Alcotest.int "63-thread fast = reference" slow.Model.fs_cases
    fast.Model.fs_cases;
  check Alcotest.int "steps agree" slow.Model.thread_steps
    fast.Model.thread_steps;
  match Model.run { cfg with Model.threads = 0 } ~nest ~checked with
  | exception Invalid_argument _ -> ()
  | _ -> fail "0 threads must be rejected"

(* ------------------------------------------------------------------ *)
(* Linreg                                                              *)
(* ------------------------------------------------------------------ *)

let test_linreg_exact () =
  let pts = List.init 10 (fun i -> (float_of_int i, (3. *. float_of_int i) +. 2.)) in
  let l1 = Linreg.fit_ols pts in
  check (Alcotest.float 1e-9) "ols a" 3. l1.Linreg.a;
  check (Alcotest.float 1e-9) "ols b" 2. l1.Linreg.b;
  check (Alcotest.float 1e-9) "rms" 0. (Linreg.residual_rms l1 pts);
  (* paper formulas are exact for a pure proportional law *)
  let pts0 = List.init 10 (fun i -> (float_of_int (i + 1), 5. *. float_of_int (i + 1))) in
  let l2 = Linreg.fit_paper pts0 in
  check (Alcotest.float 1e-9) "paper a" 5. l2.Linreg.a;
  check (Alcotest.float 1e-9) "paper b" 0. l2.Linreg.b;
  check (Alcotest.float 1e-9) "predict" 50. (Linreg.predict l2 10.)

let test_linreg_degenerate () =
  (match Linreg.fit_paper [] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "empty");
  match Linreg.fit_paper [ (0., 1.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> fail "all-zero x"

let prop_linreg_ols_recovers_line =
  QCheck2.Test.make ~name:"OLS recovers an exact affine law" ~count:200
    QCheck2.Gen.(
      triple (float_range (-5.) 5.) (float_range (-100.) 100.)
        (int_range 3 20))
    (fun (a, b, n) ->
      let pts = List.init n (fun i -> (float_of_int i, (a *. float_of_int i) +. b)) in
      let l = Linreg.fit_ols pts in
      abs_float (l.Linreg.a -. a) < 1e-6 && abs_float (l.Linreg.b -. b) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Predict                                                             *)
(* ------------------------------------------------------------------ *)

let test_predict_x_max () =
  let k = Kernels.Heat.kernel ~rows:10 ~cols:66 () in
  let checked = Kernels.Kernel.parse k in
  let nest = lower ~threads:4 ~func:"heat_step" checked in
  let cfg = Model.default_config ~threads:4 () in
  (* 8 regions x 64/(4*1) = 128 *)
  check Alcotest.int "x_max heat" 128 (Predict.x_max cfg ~nest);
  let cfg16 = { cfg with Model.chunk = Some 16 } in
  check Alcotest.int "x_max chunk16" 8 (Predict.x_max cfg16 ~nest)

let test_predict_close_to_full () =
  let k = Kernels.Heat.kernel ~rows:10 ~cols:258 () in
  let checked = Kernels.Kernel.parse k in
  let nest = lower ~threads:4 ~func:"heat_step" checked in
  let cfg = Model.default_config ~threads:4 () in
  let full = Model.run cfg ~nest ~checked in
  let pred = Predict.predict ~runs:16 cfg ~nest ~checked in
  let err =
    abs_float
      (float_of_int (pred.Predict.predicted_fs - full.Model.fs_cases))
    /. float_of_int (max 1 full.Model.fs_cases)
  in
  check Alcotest.bool "within 10%" true (err < 0.10);
  check Alcotest.bool "cheaper than full" true
    (pred.Predict.iterations_evaluated < full.Model.iterations_evaluated)

let test_predict_fit_methods_agree_on_linear () =
  let checked = checked_of writer_src in
  let nest = lower ~threads:2 ~func:"f" checked in
  let cfg = Model.default_config ~threads:2 () in
  let p1 = Predict.predict ~runs:6 ~fit:Predict.Paper cfg ~nest ~checked in
  let p2 = Predict.predict ~runs:6 ~fit:Predict.Ols cfg ~nest ~checked in
  let d = abs (p1.Predict.predicted_fs - p2.Predict.predicted_fs) in
  check Alcotest.bool "fits close" true (d <= 2)

(* ------------------------------------------------------------------ *)
(* Overhead percent                                                    *)
(* ------------------------------------------------------------------ *)

let test_overhead_percent_bounds () =
  let checked = checked_of writer_src in
  let a =
    Overhead_percent.analyze ~threads:2 ~fs_chunk:1 ~nfs_chunk:8 ~func:"f"
      checked
  in
  check Alcotest.bool "positive" true (a.Overhead_percent.percent > 0.);
  check Alcotest.bool "below 100" true (a.Overhead_percent.percent < 100.);
  check Alcotest.bool "n_fs > n_nfs" true
    (a.Overhead_percent.n_fs > a.Overhead_percent.n_nfs)

let test_overhead_percent_equal_chunks_zero () =
  let checked = checked_of writer_src in
  let a =
    Overhead_percent.analyze ~threads:2 ~fs_chunk:8 ~nfs_chunk:8 ~func:"f"
      checked
  in
  check (Alcotest.float 1e-9) "zero" 0. a.Overhead_percent.percent

let test_overhead_percent_factor_monotone () =
  let checked = checked_of writer_src in
  let p f =
    (Overhead_percent.analyze ~fs_cost_factor:f ~threads:2 ~fs_chunk:1
       ~nfs_chunk:8 ~func:"f" checked).Overhead_percent.percent
  in
  check Alcotest.bool "bigger factor, bigger share" true (p 0.9 > p 0.1)

(* ------------------------------------------------------------------ *)
(* Advisor                                                             *)
(* ------------------------------------------------------------------ *)

let test_advisor_recommends_line_chunk () =
  let checked = checked_of writer_src in
  let a = Advisor.advise ~threads:2 ~chunks:[ 1; 2; 4; 8; 16 ] ~func:"f" checked in
  check (Alcotest.option Alcotest.int) "chunk 8 kills FS" (Some 8)
    a.Advisor.best_chunk;
  match a.Advisor.victims with
  | [ v ] ->
      check Alcotest.string "victim" "y" v.Advisor.base;
      check Alcotest.int "stride" 8 v.Advisor.parallel_stride;
      check Alcotest.int "padding" 56 v.Advisor.padding_bytes
  | _ -> fail "one victim"

let test_advisor_linreg_victim () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:64 ~m:64 () in
  let checked = Kernels.Kernel.parse k in
  let a = Advisor.advise ~threads:4 ~func:"linear_regression" checked in
  match a.Advisor.victims with
  | [ v ] ->
      check Alcotest.string "victim" "tid_args" v.Advisor.base;
      check Alcotest.int "40B stride" 40 v.Advisor.parallel_stride;
      check Alcotest.int "24B pad" 24 v.Advisor.padding_bytes
  | _ -> fail "one victim"

(* ------------------------------------------------------------------ *)
(* Eliminate                                                           *)
(* ------------------------------------------------------------------ *)

let model_fs ~threads checked ~func =
  let nest = lower ~threads ~func checked in
  let cfg = Model.default_config ~threads () in
  (Model.run cfg ~nest ~checked).Model.fs_cases

let test_eliminate_spread_scalar_array () =
  let checked = checked_of writer_src in
  let before = model_fs ~threads:4 checked ~func:"f" in
  let after_checked, plan = Eliminate.eliminate ~threads:4 ~func:"f" checked in
  (match plan.Eliminate.rewrites with
  | [ Eliminate.Spread_array { base = "y"; factor = 8 } ] -> ()
  | _ -> fail "expected y spread by 8");
  let after = model_fs ~threads:4 after_checked ~func:"f" in
  check Alcotest.bool "fs before" true (before > 0);
  check Alcotest.int "fs eliminated" 0 after

let test_eliminate_pad_struct () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:64 ~m:64 () in
  let checked = Kernels.Kernel.parse k in
  let before = model_fs ~threads:4 checked ~func:"linear_regression" in
  let after_checked, plan =
    Eliminate.eliminate ~threads:4 ~func:"linear_regression" checked
  in
  (match plan.Eliminate.rewrites with
  | [ Eliminate.Pad_struct { struct_name = "acc"; pad_bytes = 24 } ] -> ()
  | _ -> fail "expected acc padded by 24");
  (* the padded accumulator is exactly one line per element *)
  check Alcotest.int "padded sizeof" 64
    (Minic.Ctypes.sizeof after_checked.Minic.Typecheck.structs
       (Minic.Ast.Tstruct "acc"));
  let after = model_fs ~threads:4 after_checked ~func:"linear_regression" in
  check Alcotest.bool "fs before" true (before > 0);
  check Alcotest.int "fs eliminated" 0 after

let test_eliminate_preserves_semantics () =
  (* the transformed saxpy computes the same values, just spread out *)
  let k = Kernels.Saxpy.kernel ~n:64 () in
  let checked = Kernels.Kernel.parse k in
  let after_checked, plan = Eliminate.eliminate ~threads:4 ~func:"saxpy" checked in
  let factor =
    match plan.Eliminate.rewrites with
    | [ Eliminate.Spread_array { base = "y"; factor } ] -> factor
    | _ -> fail "expected y spread"
  in
  let it = Execsim.Interp.create ~threads:4 after_checked in
  Execsim.Interp.exec it ~func:"init";
  Execsim.Interp.exec it ~func:"saxpy";
  List.iter
    (fun i ->
      match
        Execsim.Interp.read_global it "y" [ Execsim.Interp.Idx (i * factor) ]
      with
      | Execsim.Value.V_float f ->
          check (Alcotest.float 1e-9)
            (Printf.sprintf "y[%d]" i)
            ((0.5 *. float_of_int i) +. (2.5 *. float_of_int i))
            f
      | _ -> fail "not a float")
    [ 0; 5; 63 ]

let test_eliminate_heat_2d () =
  (* the 2-D heat victim spreads only the innermost (column) dimension *)
  let k = Kernels.Heat.kernel ~rows:6 ~cols:130 () in
  let checked = Kernels.Kernel.parse k in
  let before = model_fs ~threads:4 checked ~func:"heat_step" in
  let after_checked, plan = Eliminate.eliminate ~threads:4 ~func:"heat_step" checked in
  (match plan.Eliminate.rewrites with
  | [ Eliminate.Spread_array { base = "B"; factor = 8 } ] -> ()
  | _ -> fail "expected B spread by 8");
  (match List.assoc_opt "B" after_checked.Minic.Typecheck.global_types with
  | Some (Minic.Ast.Tarray (Minic.Ast.Tarray (Minic.Ast.Tdouble, c), 6)) ->
      check Alcotest.int "columns inflated" (130 * 8) c
  | _ -> fail "B type");
  let after = model_fs ~threads:4 after_checked ~func:"heat_step" in
  check Alcotest.bool "fs before" true (before > 0);
  check Alcotest.int "fs eliminated" 0 after

let test_eliminate_no_victims_noop () =
  let src =
    "double y[64];\nvoid f(void) {\n#pragma omp parallel for schedule(static,8)\nfor (int i = 0; i < 64; i++) { y[i] = 1.0; } }"
  in
  (* chunk 8 still has a victim by stride analysis (stride 8 < 64), so use
     a stride >= line instead: a struct of exactly one line *)
  ignore src;
  let src_line =
    {|struct big { double a; double b; double c; double d; double e; double f; double g; double h; };
struct big y[64];
void f(void) {
  #pragma omp parallel for
  for (int i = 0; i < 64; i++) { y[i].a = 1.0; }
}
|}
  in
  let checked = checked_of src_line in
  let _, plan = Eliminate.eliminate ~threads:4 ~func:"f" checked in
  check Alcotest.bool "no rewrites" true (plan.Eliminate.rewrites = [])

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_fs_counter_invalidate_others () =
  let c = Fs_counter.create ~threads:3 ~capacity:8 in
  ignore (Fs_counter.process c ~me:1 ~line:5 ~written:true);
  ignore (Fs_counter.process c ~me:2 ~line:5 ~written:true);
  check Alcotest.int "two holders" 2 (Fs_counter.process c ~me:0 ~line:5 ~written:true);
  Fs_counter.invalidate_others c ~me:0 ~line:5;
  check Alcotest.bool "others dropped" false
    (Thread_cache_state.holds (Fs_counter.state c 1) 5);
  (* re-insert by thread 0 sees nobody *)
  check Alcotest.int "clean after invalidation" 0
    (Fs_counter.process c ~me:0 ~line:5 ~written:false);
  (* wide thread counts use the Bitset masks; φ still counts correctly *)
  let w = Fs_counter.create ~threads:70 ~capacity:4 in
  ignore (Fs_counter.process w ~me:65 ~line:3 ~written:true);
  ignore (Fs_counter.process w ~me:69 ~line:3 ~written:true);
  check Alcotest.int "wide counter sees both writers" 2
    (Fs_counter.process w ~me:0 ~line:3 ~written:false);
  match Fs_counter.create ~threads:0 ~capacity:4 with
  | exception Invalid_argument _ -> ()
  | _ -> fail "0 threads must be rejected"

let test_eliminate_unsupported () =
  (* a 2-D array element is neither struct nor scalar only if victims were
     computed against an aggregate — exercise the Unsupported path via a
     hand-made victim *)
  let checked = checked_of "double y[8];\n" in
  let fake =
    { Advisor.base = "nope"; repr = "nope"; parallel_stride = 8;
      padding_bytes = 56 }
  in
  match Eliminate.plan_for checked ~line_bytes:64 [ fake ] with
  | exception Eliminate.Unsupported _ -> ()
  | _ -> fail "unknown victim must be Unsupported"

let test_linreg_pp_and_predict_fields () =
  let checked = checked_of writer_src in
  let nest = lower ~threads:2 ~func:"f" checked in
  let cfg = Model.default_config ~threads:2 () in
  let p = Predict.predict ~runs:4 cfg ~nest ~checked in
  check Alcotest.bool "truncated run count" true (p.Predict.runs_evaluated <= 4);
  check Alcotest.int "x_max is 8 runs" 8 p.Predict.x_max;
  check Alcotest.int "full iterations" 16 p.Predict.full_iterations;
  check Alcotest.bool "line pp smoke" true
    (String.length (Format.asprintf "%a" Linreg.pp p.Predict.line) > 5)

let test_report_kcount () =
  check Alcotest.string "small" "999" (Report.kcount 999);
  check Alcotest.string "thousands" "94K" (Report.kcount 94421);
  check Alcotest.string "millions" "94,421K" (Report.kcount 94_421_123);
  check Alcotest.string "pct" "6.9%" (Report.pct 6.94)

let test_report_table () =
  let t =
    Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let lines = String.split_on_char '\n' t in
  check Alcotest.int "4 lines" 4 (List.length lines);
  check Alcotest.bool "no trailing spaces" true
    (List.for_all
       (fun l -> l = "" || l.[String.length l - 1] <> ' ')
       lines)

let () =
  Alcotest.run "fsmodel"
    [
      ( "ownership",
        [
          Alcotest.test_case "dedup + write dominates" `Quick
            test_ownership_dedup_write_dominates;
          Alcotest.test_case "moves with index" `Quick
            test_ownership_moves_with_index;
          Alcotest.test_case "alignment" `Quick test_ownership_straddle;
          Alcotest.test_case "param folding" `Quick
            test_ownership_param_folding;
        ] );
      ( "cache_state",
        [
          Alcotest.test_case "written persists" `Quick
            test_state_written_persists;
          Alcotest.test_case "eviction" `Quick test_state_eviction;
        ] );
      ( "detect",
        [
          Alcotest.test_case "only modified counts" `Quick
            test_detect_counts_only_modified;
          QCheck_alcotest.to_alcotest prop_counter_matches_detect;
        ] );
      ( "model",
        [
          Alcotest.test_case "two-thread writer (hand computed)" `Quick
            test_model_two_thread_writer;
          Alcotest.test_case "line-sized chunk kills FS" `Quick
            test_model_no_fs_with_line_chunk;
          Alcotest.test_case "single thread" `Quick
            test_model_single_thread_no_fs;
          Alcotest.test_case "reads never FS" `Quick test_model_reads_never_fs;
          Alcotest.test_case "invalidate ablation" `Quick
            test_model_invalidate_ablation_reduces;
          Alcotest.test_case "unbounded stack" `Quick
            test_model_unbounded_counts_at_least_l1;
          Alcotest.test_case "truncation + samples" `Quick
            test_model_truncation_and_samples;
          Alcotest.test_case "samples on full run" `Quick
            test_model_samples_full_run;
          Alcotest.test_case "outer sequential loops" `Quick
            test_model_outer_sequential_loops;
          Alcotest.test_case "block schedule default" `Quick
            test_model_block_schedule_default;
          Alcotest.test_case "thread guard" `Quick test_model_thread_guard;
        ] );
      ( "linreg",
        [
          Alcotest.test_case "exact fits" `Quick test_linreg_exact;
          Alcotest.test_case "degenerate" `Quick test_linreg_degenerate;
          QCheck_alcotest.to_alcotest prop_linreg_ols_recovers_line;
        ] );
      ( "predict",
        [
          Alcotest.test_case "x_max" `Quick test_predict_x_max;
          Alcotest.test_case "close to full" `Quick test_predict_close_to_full;
          Alcotest.test_case "fit methods agree" `Quick
            test_predict_fit_methods_agree_on_linear;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "bounds" `Quick test_overhead_percent_bounds;
          Alcotest.test_case "equal chunks" `Quick
            test_overhead_percent_equal_chunks_zero;
          Alcotest.test_case "factor monotone" `Quick
            test_overhead_percent_factor_monotone;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "line chunk" `Quick
            test_advisor_recommends_line_chunk;
          Alcotest.test_case "linreg victim" `Quick test_advisor_linreg_victim;
        ] );
      ( "eliminate",
        [
          Alcotest.test_case "spread scalar array" `Quick
            test_eliminate_spread_scalar_array;
          Alcotest.test_case "pad struct" `Quick test_eliminate_pad_struct;
          Alcotest.test_case "semantics preserved" `Quick
            test_eliminate_preserves_semantics;
          Alcotest.test_case "2-D heat" `Quick test_eliminate_heat_2d;
          Alcotest.test_case "no victims" `Quick
            test_eliminate_no_victims_noop;
        ] );
      ( "report",
        [
          Alcotest.test_case "kcount" `Quick test_report_kcount;
          Alcotest.test_case "table" `Quick test_report_table;
          Alcotest.test_case "fs_counter invalidate" `Quick
            test_fs_counter_invalidate_others;
          Alcotest.test_case "eliminate unsupported" `Quick
            test_eliminate_unsupported;
          Alcotest.test_case "predict fields" `Quick
            test_linreg_pp_and_predict_fields;
        ] );
    ]

(* Tests for the loop IR: affine arithmetic, expression evaluation, memory
   layout, lowering, loop-nest geometry, reference grouping. *)

open Loopir

let check = Alcotest.check
let fail = Alcotest.fail

let env_of l v = List.assoc_opt v l
let env_exn l v = List.assoc v l

(* ------------------------------------------------------------------ *)
(* Affine                                                              *)
(* ------------------------------------------------------------------ *)

let test_affine_algebra () =
  let a = Affine.add (Affine.scale 3 (Affine.var "i")) (Affine.const 5) in
  check Alcotest.int "coeff i" 3 (Affine.coeff a "i");
  check Alcotest.int "const" 5 (Affine.const_part a);
  let b = Affine.sub a (Affine.var "i") in
  check Alcotest.int "coeff after sub" 2 (Affine.coeff b "i");
  let z = Affine.sub b b in
  check (Alcotest.option Alcotest.int) "zero" (Some 0) (Affine.is_const z);
  check Alcotest.bool "equal" true (Affine.equal b b);
  check Alcotest.bool "not equal" false (Affine.equal a b)

let test_affine_mul () =
  let i = Affine.var "i" in
  (match Affine.mul (Affine.const 4) i with
  | Some p -> check Alcotest.int "4*i coeff" 4 (Affine.coeff p "i")
  | None -> fail "const*var should multiply");
  match Affine.mul i i with
  | None -> ()
  | Some _ -> fail "var*var is not affine"

let test_affine_eval_subst () =
  let a =
    Affine.add
      (Affine.add (Affine.scale 2 (Affine.var "i")) (Affine.var "j"))
      (Affine.const 1)
  in
  check Alcotest.int "eval" 12 (Affine.eval (env_exn [ ("i", 4); ("j", 3) ]) a);
  let s =
    Affine.subst
      (fun v -> if v = "j" then Some (Affine.scale 5 (Affine.var "k")) else None)
      a
  in
  check Alcotest.int "subst eval" 24
    (Affine.eval (env_exn [ ("i", 4); ("k", 3) ]) s)

let test_affine_of_expr () =
  let parse s = Minic.Parser.parse_expr_string [] s in
  let lookup v =
    if v = "i" || v = "j" then Some (Affine.var v)
    else if v = "N" then Some (Affine.const 10)
    else None
  in
  (match Affine.of_expr lookup (parse "2*i + j - 3") with
  | Some a ->
      check Alcotest.int "2i" 2 (Affine.coeff a "i");
      check Alcotest.int "j" 1 (Affine.coeff a "j");
      check Alcotest.int "c" (-3) (Affine.const_part a)
  | None -> fail "affine expr rejected");
  (match Affine.of_expr lookup (parse "i * N") with
  | Some a -> check Alcotest.int "i*N" 10 (Affine.coeff a "i")
  | None -> fail "i*N is affine when N is const");
  (match Affine.of_expr lookup (parse "i * j") with
  | None -> ()
  | Some _ -> fail "i*j must be rejected");
  (match Affine.of_expr lookup (parse "i / 2") with
  | None -> ()
  | Some _ -> fail "i/2 must be rejected (truncation)");
  match Affine.of_expr lookup (parse "N / 3") with
  | Some a ->
      check (Alcotest.option Alcotest.int) "N/3" (Some 3) (Affine.is_const a)
  | None -> fail "const division folds"

(* qcheck: affine add/scale laws under evaluation *)
let affine_gen =
  let open QCheck2.Gen in
  let term =
    map2
      (fun v c -> Affine.scale c (Affine.var ("v" ^ string_of_int (abs v mod 3))))
      small_int (int_range (-5) 5)
  in
  map2
    (fun terms c -> List.fold_left Affine.add (Affine.const c) terms)
    (list_size (int_range 0 4) term)
    (int_range (-10) 10)

let prop_affine_add_eval =
  QCheck2.Test.make ~name:"eval (a + b) = eval a + eval b" ~count:300
    QCheck2.Gen.(pair affine_gen affine_gen)
    (fun (a, b) ->
      let env v = match v with "v0" -> 2 | "v1" -> -3 | _ -> 7 in
      Affine.eval env (Affine.add a b) = Affine.eval env a + Affine.eval env b)

let prop_affine_scale_eval =
  QCheck2.Test.make ~name:"eval (k * a) = k * eval a" ~count:300
    QCheck2.Gen.(pair (int_range (-6) 6) affine_gen)
    (fun (k, a) ->
      let env v = match v with "v0" -> 5 | "v1" -> 1 | _ -> -2 in
      Affine.eval env (Affine.scale k a) = k * Affine.eval env a)

(* ------------------------------------------------------------------ *)
(* Expr_eval                                                           *)
(* ------------------------------------------------------------------ *)

let test_expr_eval () =
  let parse s = Minic.Parser.parse_expr_string [] s in
  let env = env_of [ ("x", 7); ("y", -2) ] in
  check Alcotest.int "arith" 12 (Expr_eval.eval env (parse "x + y + x"));
  check Alcotest.int "div trunc" 3 (Expr_eval.eval env (parse "x / 2"));
  check Alcotest.int "mod" 1 (Expr_eval.eval env (parse "x % 2"));
  check Alcotest.int "cmp true" 1 (Expr_eval.eval env (parse "x > y"));
  check Alcotest.int "cmp false" 0 (Expr_eval.eval env (parse "x < y"));
  check Alcotest.int "logic" 1 (Expr_eval.eval env (parse "x > 0 && y < 0"));
  (match Expr_eval.eval env (parse "z + 1") with
  | exception Expr_eval.Unbound "z" -> ()
  | _ -> fail "unbound must raise");
  (match Expr_eval.eval env (parse "x / 0") with
  | exception Division_by_zero -> ()
  | _ -> fail "div by zero");
  match Expr_eval.eval env (parse "1.5") with
  | exception Expr_eval.Not_integer _ -> ()
  | _ -> fail "float literal is not an integer"

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let checked_of src =
  Minic.Typecheck.check_program (Minic.Parser.parse_program src)

let test_layout () =
  let checked = checked_of "char c;\ndouble a[10];\nint b[3];\n" in
  let l = Layout.make ~line_bytes:64 checked in
  check Alcotest.int "c addr" 0 (Layout.addr_of l "c");
  check Alcotest.int "a aligned" 64 (Layout.addr_of l "a");
  check Alcotest.int "b aligned" 192 (Layout.addr_of l "b");
  check Alcotest.int "a size" 80 (Layout.size_of l "a");
  check Alcotest.int "total rounded" 256 (Layout.total_bytes l);
  let gs = Layout.globals l in
  List.iteri
    (fun i (_, addr, size) ->
      match List.nth_opt gs (i + 1) with
      | Some (_, addr', _) ->
          check Alcotest.bool "no overlap" true (addr + size <= addr')
      | None -> ())
    gs;
  match Layout.addr_of l "zz" with
  | exception Not_found -> ()
  | _ -> fail "unknown global"

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

let lower_src ?(params = [ ("num_threads", 4) ]) ~func src =
  Lower.lower (checked_of src) ~func ~params

let test_lower_heat_shape () =
  let k = Kernels.Heat.kernel ~rows:10 ~cols:66 () in
  let nest =
    Lower.lower (Kernels.Kernel.parse k) ~func:"heat_step"
      ~params:[ ("num_threads", 4) ]
  in
  check Alcotest.int "depth" 2 (Loop_nest.depth nest);
  check Alcotest.int "parallel depth" 1 nest.Loop_nest.parallel_depth;
  check Alcotest.int "refs" 5 (List.length nest.Loop_nest.refs);
  let writes = List.filter Array_ref.is_write nest.Loop_nest.refs in
  (match writes with
  | [ w ] ->
      check Alcotest.string "write base" "B" w.Array_ref.base;
      check Alcotest.int "row stride" (66 * 8)
        (Affine.coeff w.Array_ref.offset "i");
      check Alcotest.int "col stride" 8 (Affine.coeff w.Array_ref.offset "j")
  | _ -> fail "exactly one write");
  check Alcotest.int "chunk" 1 (Loop_nest.chunk_size nest)

let test_lower_linreg_offsets () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:16 ~m:32 () in
  let nest =
    Lower.lower (Kernels.Kernel.parse k) ~func:"linear_regression"
      ~params:[ ("num_threads", 4) ]
  in
  check Alcotest.int "parallel depth" 0 nest.Loop_nest.parallel_depth;
  let field_offsets =
    List.filter_map
      (fun (r : Array_ref.t) ->
        if r.Array_ref.base = "tid_args" && Array_ref.is_write r then
          Some (Affine.const_part r.Array_ref.offset)
        else None)
      nest.Loop_nest.refs
  in
  check (Alcotest.list Alcotest.int) "struct field offsets"
    [ 0; 8; 16; 24; 32 ] field_offsets;
  List.iter
    (fun (r : Array_ref.t) ->
      if r.Array_ref.base = "tid_args" then
        check Alcotest.int "40B stride over j" 40
          (Affine.coeff r.Array_ref.offset "j"))
    nest.Loop_nest.refs

let test_lower_private_excluded () =
  let src =
    {|int a[16];
int priv;
void f(void) {
  int i;
  #pragma omp parallel for private(i, priv)
  for (i = 0; i < 16; i++) {
    priv = a[i];
    a[i] = priv + 1;
  }
}
|}
  in
  let nest = lower_src ~func:"f" src in
  check Alcotest.bool "no priv refs" true
    (List.for_all (fun r -> r.Array_ref.base = "a") nest.Loop_nest.refs)

let test_lower_reduction_excluded () =
  let src =
    {|double a[16];
double s;
void f(void) {
  int i;
  #pragma omp parallel for reduction(+:s)
  for (i = 0; i < 16; i++) {
    s += a[i];
  }
}
|}
  in
  let nest = lower_src ~func:"f" src in
  check Alcotest.bool "reduction var not a ref" true
    (List.for_all (fun r -> r.Array_ref.base = "a") nest.Loop_nest.refs)

let test_lower_compound_assign_refs () =
  let src =
    "double a[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { a[i] += 1.0; } }"
  in
  let nest = lower_src ~func:"f" src in
  let reads, writes =
    List.partition (fun r -> not (Array_ref.is_write r)) nest.Loop_nest.refs
  in
  check Alcotest.int "one read" 1 (List.length reads);
  check Alcotest.int "one write" 1 (List.length writes)

let test_lower_two_arrays () =
  let src =
    "int b[8];\ndouble a[8];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 8; i++) { a[i] = 1.0; b[i] = 0; } }"
  in
  let nest = lower_src ~func:"f" src in
  check Alcotest.int "refs" 2 (List.length nest.Loop_nest.refs)

let expect_lower_error name src ~func =
  match lower_src ~func src with
  | exception Lower.Lower_error _ -> ()
  | _ -> fail (name ^ ": expected Lower_error")

let test_lower_errors () =
  expect_lower_error "no pragma" ~func:"f"
    "int a[4];\nvoid f(void) { int i; for (i = 0; i < 4; i++) { a[i] = 1; } }";
  expect_lower_error "unknown function" ~func:"zzz" "int a;\n";
  expect_lower_error "imperfect nest" ~func:"f"
    {|int a[4];
void f(void) {
  int i; int j;
  #pragma omp parallel for
  for (i = 0; i < 4; i++) {
    a[i] = 0;
    for (j = 0; j < 4; j++) {
      a[j] = 1;
    }
  }
}
|};
  expect_lower_error "non-affine subscript" ~func:"f"
    "int a[100];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 10; i++) { a[i*i] = 1; } }";
  expect_lower_error "bad condition" ~func:"f"
    "int a[10];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i != 10; i++) { a[i] = 1; } }";
  expect_lower_error "while in innermost body" ~func:"f"
    "int a[10];\nint j;\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 10; i++) { while (a[i] < 3) { a[i] += 1; } } }";
  expect_lower_error "break in modeled body" ~func:"f"
    "int a[10];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 0; i < 10; i++) { if (i == 3) { break; } a[i] = 1; } }"

let test_lower_all () =
  let src =
    {|double a[32];
double b[32];
void f(void) {
  int i;
  #pragma omp parallel for private(i)
  for (i = 0; i < 32; i++) { a[i] = 1.0; }
  #pragma omp parallel for private(i) schedule(static,4)
  for (i = 0; i < 32; i++) { b[i] = a[i]; }
}
|}
  in
  let checked = checked_of src in
  let nests = Lower.lower_all checked ~func:"f" ~params:[] in
  check Alcotest.int "two nests" 2 (List.length nests);
  (match nests with
  | [ n1; n2 ] ->
      check Alcotest.int "first writes a" 1 (List.length n1.Loop_nest.refs);
      check Alcotest.int "second has read+write" 2
        (List.length n2.Loop_nest.refs);
      check (Alcotest.option Alcotest.int) "chunks differ" (Some 4)
        (Loop_nest.chunk_spec n2)
  | _ -> fail "two nests");
  (* [lower] picks the first *)
  let first = Lower.lower checked ~func:"f" ~params:[] in
  check Alcotest.string "first ref base" "a"
    (List.hd first.Loop_nest.refs).Array_ref.base

let test_lower_step_gt_one () =
  let nest =
    lower_src ~func:"f"
      "double y[64];\nvoid f(void) {\n#pragma omp parallel for schedule(static,1)\nfor (int i = 0; i < 64; i += 4) { y[i] = 1.0; } }"
  in
  let loop = Loop_nest.parallel_loop nest in
  check Alcotest.int "step" 4 loop.Loop_nest.step;
  check Alcotest.int "trip" 16 (Loop_nest.trip_count loop ~env:(env_of []))

let test_find_parallel_functions () =
  let checked =
    checked_of
      {|int a[4];
void seq(void) { a[0] = 1; }
void par(void) {
  #pragma omp parallel for
  for (int i = 0; i < 4; i++) { a[i] = i; }
}
|}
  in
  check (Alcotest.list Alcotest.string) "parallel funcs" [ "par" ]
    (Lower.find_parallel_functions checked.Minic.Typecheck.prog)

(* ------------------------------------------------------------------ *)
(* Loop_nest geometry                                                  *)
(* ------------------------------------------------------------------ *)

let test_trip_count () =
  let nest =
    lower_src ~func:"f"
      "int a[100];\nvoid f(void) {\n#pragma omp parallel for schedule(static,2)\nfor (int i = 3; i <= 17; i += 2) { a[i] = 1; } }"
  in
  let loop = Loop_nest.parallel_loop nest in
  check Alcotest.int "trip (3..17 step2 incl)" 8
    (Loop_nest.trip_count loop ~env:(env_of []));
  check Alcotest.int "chunk" 2 (Loop_nest.chunk_size nest)

let test_trip_count_empty () =
  let nest =
    lower_src ~func:"f"
      "int a[10];\nvoid f(void) {\n#pragma omp parallel for\nfor (int i = 5; i < 5; i++) { a[i] = 1; } }"
  in
  check Alcotest.int "empty" 0
    (Loop_nest.trip_count (Loop_nest.parallel_loop nest) ~env:(env_of []))

let test_total_iterations_rect () =
  let k = Kernels.Heat.kernel ~rows:10 ~cols:66 () in
  let nest =
    Lower.lower (Kernels.Kernel.parse k) ~func:"heat_step"
      ~params:[ ("num_threads", 4) ]
  in
  check Alcotest.int "8*64" 512
    (Loop_nest.total_iterations nest ~env:(env_of []))

let test_total_iterations_triangular () =
  let src =
    {|double a[40][40];
void f(void) {
  int i; int j;
  #pragma omp parallel for private(j)
  for (i = 0; i < 8; i++) {
    for (j = 0; j < i; j++) {
      a[i][j] = 1.0;
    }
  }
}
|}
  in
  let nest = lower_src ~func:"f" src in
  check Alcotest.int "0+1+..+7" 28
    (Loop_nest.total_iterations nest ~env:(env_of []))

let test_total_iterations_param () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:16 ~m:32 () in
  let nest =
    Lower.lower (Kernels.Kernel.parse k) ~func:"linear_regression"
      ~params:[ ("num_threads", 4) ]
  in
  check Alcotest.int "16 * 32/4" 128
    (Loop_nest.total_iterations nest ~env:(env_of [ ("num_threads", 4) ]))

(* ------------------------------------------------------------------ *)
(* Ref groups                                                          *)
(* ------------------------------------------------------------------ *)

let test_ref_groups_heat () =
  let k = Kernels.Heat.kernel ~rows:10 ~cols:66 () in
  let nest =
    Lower.lower (Kernels.Kernel.parse k) ~func:"heat_step"
      ~params:[ ("num_threads", 4) ]
  in
  check Alcotest.int "groups" 4
    (Ref_group.count ~line_bytes:64 nest.Loop_nest.refs);
  let groups = Ref_group.form ~line_bytes:64 nest.Loop_nest.refs in
  let b_groups =
    List.filter
      (fun (g : Ref_group.t) -> g.Ref_group.leader.Array_ref.base = "B")
      groups
  in
  match b_groups with
  | [ g ] -> check Alcotest.bool "B written" true g.Ref_group.has_write
  | _ -> fail "one B group"

let test_ref_groups_same_line_fields () =
  let k = Kernels.Linreg_kernel.kernel ~nacc:16 ~m:32 () in
  let nest =
    Lower.lower (Kernels.Kernel.parse k) ~func:"linear_regression"
      ~params:[ ("num_threads", 4) ]
  in
  check Alcotest.int "two groups" 2
    (Ref_group.count ~line_bytes:64 nest.Loop_nest.refs)

let () =
  Alcotest.run "loopir"
    [
      ( "affine",
        [
          Alcotest.test_case "algebra" `Quick test_affine_algebra;
          Alcotest.test_case "mul" `Quick test_affine_mul;
          Alcotest.test_case "eval/subst" `Quick test_affine_eval_subst;
          Alcotest.test_case "of_expr" `Quick test_affine_of_expr;
          QCheck_alcotest.to_alcotest prop_affine_add_eval;
          QCheck_alcotest.to_alcotest prop_affine_scale_eval;
        ] );
      ("expr_eval", [ Alcotest.test_case "semantics" `Quick test_expr_eval ]);
      ("layout", [ Alcotest.test_case "addresses" `Quick test_layout ]);
      ( "lower",
        [
          Alcotest.test_case "heat shape" `Quick test_lower_heat_shape;
          Alcotest.test_case "linreg offsets" `Quick
            test_lower_linreg_offsets;
          Alcotest.test_case "private excluded" `Quick
            test_lower_private_excluded;
          Alcotest.test_case "reduction excluded" `Quick
            test_lower_reduction_excluded;
          Alcotest.test_case "compound assign" `Quick
            test_lower_compound_assign_refs;
          Alcotest.test_case "two arrays" `Quick test_lower_two_arrays;
          Alcotest.test_case "errors" `Quick test_lower_errors;
          Alcotest.test_case "lower_all" `Quick test_lower_all;
          Alcotest.test_case "step > 1" `Quick test_lower_step_gt_one;
          Alcotest.test_case "find parallel funcs" `Quick
            test_find_parallel_functions;
        ] );
      ( "loop_nest",
        [
          Alcotest.test_case "trip count" `Quick test_trip_count;
          Alcotest.test_case "empty trip" `Quick test_trip_count_empty;
          Alcotest.test_case "total iters rect" `Quick
            test_total_iterations_rect;
          Alcotest.test_case "total iters triangular" `Quick
            test_total_iterations_triangular;
          Alcotest.test_case "total iters param" `Quick
            test_total_iterations_param;
        ] );
      ( "ref_group",
        [
          Alcotest.test_case "heat groups" `Quick test_ref_groups_heat;
          Alcotest.test_case "field groups" `Quick
            test_ref_groups_same_line_fields;
        ] );
    ]

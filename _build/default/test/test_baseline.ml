(* Tests for the runtime trace-based detector and the model-vs-runtime
   comparison harness. *)

let check = Alcotest.check
let fail = Alcotest.fail

let saxpy = Kernels.Saxpy.kernel ~n:512 ()

let test_detector_finds_fs () =
  let r = Baseline.Trace_detector.detect ~threads:4 ~chunk:1 saxpy in
  check Alcotest.bool "fs misses found" true (r.Baseline.Trace_detector.fs_misses > 0);
  check Alcotest.int "traced everything (3 per iteration)" (3 * 512)
    r.Baseline.Trace_detector.accesses_traced

let test_detector_clean_with_good_chunk () =
  let r = Baseline.Trace_detector.detect ~threads:4 ~chunk:8 saxpy in
  check Alcotest.int "no fs misses" 0 r.Baseline.Trace_detector.fs_misses

let test_spearman () =
  check (Alcotest.float 1e-9) "identity" 1.
    (Baseline.Compare.spearman [ 1.; 2.; 3. ] [ 10.; 20.; 30. ]);
  check (Alcotest.float 1e-9) "reversed" (-1.)
    (Baseline.Compare.spearman [ 1.; 2.; 3. ] [ 30.; 20.; 10. ]);
  check (Alcotest.float 1e-9) "short lists" 1.
    (Baseline.Compare.spearman [ 1. ] [ 5. ]);
  (* constant series: zero variance -> defined as full agreement *)
  check (Alcotest.float 1e-9) "constant" 1.
    (Baseline.Compare.spearman [ 1.; 1.; 1. ] [ 3.; 2.; 1. ])

let test_spearman_with_ties () =
  let r = Baseline.Compare.spearman [ 1.; 1.; 2.; 3. ] [ 5.; 5.; 7.; 9. ] in
  check Alcotest.bool "ties handled, strong agreement" true (r > 0.9)

let test_compare_ranks_agree () =
  let c =
    Baseline.Compare.run ~chunks:[ 1; 2; 4; 8 ] ~threads:4 saxpy
  in
  check Alcotest.bool "rank agreement high" true
    (c.Baseline.Compare.rank_agreement >= 0.79);
  (* chunk 1 must dominate chunk 8 in both methods *)
  let row chunk =
    List.find (fun r -> r.Baseline.Compare.chunk = chunk)
      c.Baseline.Compare.rows
  in
  let r1 = row 1 and r8 = row 8 in
  check Alcotest.bool "model: chunk1 worse" true
    (r1.Baseline.Compare.model_fs_cases > r8.Baseline.Compare.model_fs_cases);
  check Alcotest.bool "runtime: chunk1 worse" true
    (r1.Baseline.Compare.runtime_fs_misses
    >= r8.Baseline.Compare.runtime_fs_misses);
  (* the predictor is cheaper than the full model, which needs no trace *)
  List.iter
    (fun r ->
      check Alcotest.bool "predictor cheaper or equal" true
        (r.Baseline.Compare.predictor_iterations
        <= r.Baseline.Compare.model_iterations))
    c.Baseline.Compare.rows

let test_compare_kernel_name () =
  let c = Baseline.Compare.run ~chunks:[ 1; 8 ] ~threads:2 saxpy in
  check Alcotest.string "kernel" "saxpy" c.Baseline.Compare.kernel;
  check Alcotest.int "rows" 2 (List.length c.Baseline.Compare.rows);
  if c.Baseline.Compare.rows = [] then fail "rows empty"

let () =
  Alcotest.run "baseline"
    [
      ( "trace_detector",
        [
          Alcotest.test_case "finds fs" `Quick test_detector_finds_fs;
          Alcotest.test_case "clean chunk" `Quick
            test_detector_clean_with_good_chunk;
        ] );
      ( "compare",
        [
          Alcotest.test_case "spearman" `Quick test_spearman;
          Alcotest.test_case "spearman ties" `Quick test_spearman_with_ties;
          Alcotest.test_case "ranks agree" `Quick test_compare_ranks_agree;
          Alcotest.test_case "metadata" `Quick test_compare_kernel_name;
        ] );
    ]

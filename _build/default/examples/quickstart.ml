(* Quickstart: feed an OpenMP C loop to the compile-time model and ask
   where the false sharing is and what it costs.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
#define N 8192

double hist[64];
double data[N];

void accumulate(void) {
  int i;
  int b;
  /* each thread accumulates into its own bucket... which shares a cache
     line with seven neighbours.  A classic. */
  #pragma omp parallel for private(i,b) schedule(static,1)
  for (b = 0; b < 64; b++) {
    for (i = 0; i < N / num_threads; i++) {
      hist[b] += data[i];
    }
  }
}
|}

let () =
  let threads = 8 in
  (* 1. front end: preprocess, parse, typecheck *)
  let prog = Minic.Parser.parse_program source in
  let checked = Minic.Typecheck.check_program prog in
  (* 2. lower to a loop nest with affine array references *)
  let nest =
    Loopir.Lower.lower checked ~func:"accumulate"
      ~params:[ ("num_threads", threads) ]
  in
  Format.printf "Lowered nest:@.%a@.@." Loopir.Loop_nest.pp nest;
  (* 3. run the false-sharing cost model (paper §III, steps 1-4) *)
  let cfg = Fsmodel.Model.default_config ~threads () in
  let r = Fsmodel.Model.run cfg ~nest ~checked in
  Format.printf
    "Full model: %d false-sharing cases over %d iterations (%d per thread)@."
    r.Fsmodel.Model.fs_cases r.Fsmodel.Model.iterations_evaluated
    r.Fsmodel.Model.thread_steps;
  (* 4. and the fast linear-regression predictor (§III-E) *)
  let p = Fsmodel.Predict.predict ~runs:8 cfg ~nest ~checked in
  Format.printf
    "Predictor:  ~%d cases from %d chunk runs (%d of %d iterations, %s)@."
    p.Fsmodel.Predict.predicted_fs p.Fsmodel.Predict.runs_evaluated
    p.Fsmodel.Predict.iterations_evaluated p.Fsmodel.Predict.full_iterations
    (Format.asprintf "%a" Fsmodel.Linreg.pp p.Fsmodel.Predict.line);
  (* 5. overhead as a share of loop time, FS chunk vs optimized chunk *)
  let a =
    Fsmodel.Overhead_percent.analyze ~threads ~fs_chunk:1 ~nfs_chunk:8
      ~func:"accumulate" checked
  in
  Format.printf "Overhead:   %a@.@." Fsmodel.Overhead_percent.pp a;
  (* 6. what would fix it? *)
  let advice = Fsmodel.Advisor.advise ~threads ~func:"accumulate" checked in
  Format.printf "%a@." Fsmodel.Advisor.pp advice

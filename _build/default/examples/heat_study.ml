(* Heat-diffusion study: modeled vs simulated ("measured") false-sharing
   overhead across team sizes — a scaled-down rendition of the paper's
   Table I / Fig. 8 workflow on the 48-core machine model.

   Run with: dune exec examples/heat_study.exe *)

let () =
  let kernel = Kernels.Heat.kernel ~rows:10 ~cols:7682 () in
  let checked = Kernels.Kernel.parse kernel in
  let fs_chunk = kernel.Kernels.Kernel.fs_chunk in
  let nfs_chunk = kernel.Kernels.Kernel.nfs_chunk in
  Format.printf
    "Heat diffusion, chunk %d (FS) vs chunk %d (no FS), simulated machine:@.@."
    fs_chunk nfs_chunk;
  let rows =
    List.map
      (fun threads ->
        let c = Execsim.Run.measured_fs_percent ~threads kernel in
        let a =
          Fsmodel.Overhead_percent.analyze ~threads ~fs_chunk ~nfs_chunk
            ~func:kernel.Kernels.Kernel.func checked
        in
        [
          string_of_int threads;
          Printf.sprintf "%.5f" c.Execsim.Run.fs.Execsim.Run.seconds;
          Printf.sprintf "%.5f" c.Execsim.Run.nfs.Execsim.Run.seconds;
          Fsmodel.Report.pct c.Execsim.Run.percent;
          Fsmodel.Report.pct a.Fsmodel.Overhead_percent.percent;
          Fsmodel.Report.kcount a.Fsmodel.Overhead_percent.n_fs;
        ])
      [ 2; 4; 8; 16; 24; 32; 40; 48 ]
  in
  print_endline
    (Fsmodel.Report.table
       ~header:
         [ "threads"; "T_fs (s)"; "T_nfs (s)"; "measured FS"; "modeled FS";
           "N_fs cases" ]
       rows);
  Format.printf
    "@.Both columns should rise from 2 threads, saturate once a full cache@.\
     line (8 doubles) is shared by 8 distinct threads, and stay high.@."

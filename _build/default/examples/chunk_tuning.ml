(* Chunk tuning: the use case of the paper's Fig. 2 — execution time of the
   Phoenix linear-regression kernel as a function of the schedule(static,c)
   chunk size, next to the model's FS-case prediction for the same chunks.
   The model ranks the chunks without running the program.

   Run with: dune exec examples/chunk_tuning.exe *)

let () =
  let threads = 8 in
  let kernel = Kernels.Linreg_kernel.kernel ~nacc:1200 ~m:256 () in
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", threads) ]
  in
  let chunks = [ 1; 2; 3; 5; 8; 10; 15; 20; 30 ] in
  Format.printf
    "Linear regression on %d simulated threads (lower time is better):@.@."
    threads;
  let rows =
    List.map
      (fun chunk ->
        let m = Execsim.Run.measure ~chunk ~threads kernel in
        let cfg =
          { (Fsmodel.Model.default_config ~threads ()) with
            Fsmodel.Model.chunk = Some chunk }
        in
        let p = Fsmodel.Predict.predict ~runs:10 cfg ~nest ~checked in
        (chunk, m.Execsim.Run.seconds, p.Fsmodel.Predict.predicted_fs))
      chunks
  in
  print_endline
    (Fsmodel.Report.table
       ~header:[ "chunk"; "simulated time (s)"; "modeled FS cases" ]
       (List.map
          (fun (c, s, fs) ->
            [ string_of_int c; Printf.sprintf "%.5f" s;
              Fsmodel.Report.kcount fs ])
          rows));
  let best_time =
    List.fold_left (fun acc (c, s, _) -> match acc with
      | Some (_, bs) when bs <= s -> acc
      | _ -> Some (c, s)) None rows
  in
  let best_model =
    List.fold_left (fun acc (c, _, fs) -> match acc with
      | Some (_, bfs) when bfs <= fs -> acc
      | _ -> Some (c, fs)) None rows
  in
  (match (best_time, best_model) with
  | Some (ct, _), Some (cm, _) ->
      Format.printf
        "@.fastest chunk (simulated): %d; model's pick (fewest FS cases): %d@."
        ct cm
  | _ -> ());
  Format.printf
    "The model reproduces the Fig. 2 trend: time falls as the chunk grows@.\
     because neighbouring threads stop sharing accumulator cache lines.@."

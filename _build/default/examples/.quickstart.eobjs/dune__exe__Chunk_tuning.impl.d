examples/chunk_tuning.ml: Execsim Format Fsmodel Kernels List Loopir Printf

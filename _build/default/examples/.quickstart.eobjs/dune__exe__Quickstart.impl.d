examples/quickstart.ml: Format Fsmodel Loopir Minic

examples/quickstart.mli:

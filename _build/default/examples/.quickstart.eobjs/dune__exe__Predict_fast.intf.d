examples/predict_fast.mli:

examples/fix_false_sharing.ml: Cachesim Execsim Format Fsmodel Kernels List Minic

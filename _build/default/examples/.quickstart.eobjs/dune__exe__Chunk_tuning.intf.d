examples/chunk_tuning.mli:

examples/heat_study.mli:

examples/fix_false_sharing.mli:

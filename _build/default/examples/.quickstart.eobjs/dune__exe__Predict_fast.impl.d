examples/predict_fast.ml: Float Format Fsmodel Kernels List Loopir Unix

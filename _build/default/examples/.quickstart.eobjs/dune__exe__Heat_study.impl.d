examples/heat_study.ml: Execsim Format Fsmodel Kernels List Printf

(* The linear-regression predictor (paper §III-E): how much modeling work
   does it save, and how close does it land to the full evaluation?

   Run with: dune exec examples/predict_fast.exe *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let threads = 16 in
  List.iter
    (fun (kernel : Kernels.Kernel.t) ->
      let checked = Kernels.Kernel.parse kernel in
      let nest =
        Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
          ~params:[ ("num_threads", threads) ]
      in
      let cfg =
        { (Fsmodel.Model.default_config ~threads ()) with
          Fsmodel.Model.chunk = Some kernel.Kernels.Kernel.fs_chunk }
      in
      let full, t_full = time (fun () -> Fsmodel.Model.run cfg ~nest ~checked) in
      let pred, t_pred =
        time (fun () ->
            Fsmodel.Predict.predict ~runs:kernel.Kernels.Kernel.pred_runs cfg
              ~nest ~checked)
      in
      let err =
        if full.Fsmodel.Model.fs_cases = 0 then 0.
        else
          100.
          *. Float.abs
               (float_of_int
                  (pred.Fsmodel.Predict.predicted_fs
                  - full.Fsmodel.Model.fs_cases))
          /. float_of_int full.Fsmodel.Model.fs_cases
      in
      Format.printf
        "%-18s full: %s cases, %d iters, %.3fs | predicted: %s from %d iters \
         (%.0fx less work), %.3fs | error %.1f%%@."
        kernel.Kernels.Kernel.name
        (Fsmodel.Report.kcount full.Fsmodel.Model.fs_cases)
        full.Fsmodel.Model.iterations_evaluated t_full
        (Fsmodel.Report.kcount pred.Fsmodel.Predict.predicted_fs)
        pred.Fsmodel.Predict.iterations_evaluated
        (float_of_int full.Fsmodel.Model.iterations_evaluated
        /. float_of_int (max 1 pred.Fsmodel.Predict.iterations_evaluated))
        t_pred err)
    [
      Kernels.Heat.kernel ();
      Kernels.Dft.kernel ();
      Kernels.Linreg_kernel.kernel ();
      Kernels.Saxpy.kernel ();
    ]

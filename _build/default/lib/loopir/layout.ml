type entry = { name : string; addr : int; size : int }
type t = { entries : entry list; total : int }

let round_up x a = (x + a - 1) / a * a

let make ?(line_bytes = 64) (checked : Minic.Typecheck.checked) =
  let addr = ref 0 in
  let entries =
    List.map
      (fun (name, ty) ->
        let size = Minic.Ctypes.sizeof checked.Minic.Typecheck.structs ty in
        let a = round_up !addr line_bytes in
        addr := a + size;
        { name; addr = a; size })
      checked.Minic.Typecheck.global_types
  in
  { entries; total = round_up !addr line_bytes }

let find t name =
  match List.find_opt (fun e -> e.name = name) t.entries with
  | Some e -> e
  | None -> raise Not_found

let addr_of t name = (find t name).addr
let size_of t name = (find t name).size
let total_bytes t = t.total
let globals t = List.map (fun e -> (e.name, e.addr, e.size)) t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e -> Format.fprintf ppf "%8d..%8d  %s@," e.addr (e.addr + e.size) e.name)
    t.entries;
  Format.fprintf ppf "total %d bytes@]" t.total

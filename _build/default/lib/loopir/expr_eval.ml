exception Unbound of string
exception Not_integer of string

let rec eval env expr =
  let open Minic.Ast in
  match expr with
  | Int_lit n -> n
  | Float_lit _ -> raise (Not_integer "float literal")
  | Ident v -> (
      match env v with Some n -> n | None -> raise (Unbound v))
  | Unop (Neg, e) -> -eval env e
  | Unop (Not, e) -> if eval env e = 0 then 1 else 0
  | Binop (op, a, b) -> (
      let a = eval env a in
      let b () = eval env b in
      match op with
      | Add -> a + b ()
      | Sub -> a - b ()
      | Mul -> a * b ()
      | Div ->
          let d = b () in
          if d = 0 then raise Division_by_zero else a / d
      | Mod ->
          let d = b () in
          if d = 0 then raise Division_by_zero else a mod d
      | Lt -> if a < b () then 1 else 0
      | Le -> if a <= b () then 1 else 0
      | Gt -> if a > b () then 1 else 0
      | Ge -> if a >= b () then 1 else 0
      | Eq -> if a = b () then 1 else 0
      | Ne -> if a <> b () then 1 else 0
      | And -> if a <> 0 && b () <> 0 then 1 else 0
      | Or -> if a <> 0 || b () <> 0 then 1 else 0)
  | Index _ | Field _ -> raise (Not_integer "memory access")
  | Call (f, _) -> raise (Not_integer ("call to " ^ f))

lib/loopir/array_ref.ml: Affine Format

lib/loopir/ref_group.ml: Affine Array_ref List

lib/loopir/lower.ml: Affine Array_ref Ast Ctypes Expr_eval Format List Loop_nest Minic Option Pretty Typecheck

lib/loopir/loop_nest.ml: Array_ref Expr_eval Format List Minic Option String

lib/loopir/layout.ml: Format List Minic

lib/loopir/affine.mli: Format Minic

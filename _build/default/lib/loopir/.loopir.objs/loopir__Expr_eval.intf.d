lib/loopir/expr_eval.mli: Minic

lib/loopir/ref_group.mli: Array_ref

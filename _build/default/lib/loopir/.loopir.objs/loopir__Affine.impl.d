lib/loopir/affine.ml: Format Int List Map Minic Option String

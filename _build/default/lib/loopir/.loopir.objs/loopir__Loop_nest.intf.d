lib/loopir/loop_nest.mli: Array_ref Format Minic

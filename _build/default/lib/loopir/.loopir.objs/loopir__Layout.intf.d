lib/loopir/layout.mli: Format Minic

lib/loopir/array_ref.mli: Affine Format

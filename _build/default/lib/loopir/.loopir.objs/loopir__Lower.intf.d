lib/loopir/lower.mli: Loop_nest Minic

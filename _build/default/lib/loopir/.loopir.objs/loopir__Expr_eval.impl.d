lib/loopir/expr_eval.ml: Minic

(** Virtual memory layout of global variables.

    The paper's step-2 assumption (§III-B) is that every array is aligned to
    a cache-line boundary so relative cache lines are known at compile time;
    this module realizes that assumption by assigning each global a
    line-aligned base address.  The execution simulator shares the same
    layout so measured and modeled sides see the same lines. *)

type t

val make : ?line_bytes:int -> Minic.Typecheck.checked -> t
(** Assign addresses in declaration order, each aligned up to [line_bytes]
    (default 64). *)

val addr_of : t -> string -> int
(** @raise Not_found for unknown globals. *)

val size_of : t -> string -> int
val total_bytes : t -> int
val globals : t -> (string * int * int) list
(** (name, address, size) in address order. *)

val pp : Format.formatter -> t -> unit

type t = {
  leader : Array_ref.t;
  members : Array_ref.t list;
  has_write : bool;
}

let same_group ~line_bytes (a : Array_ref.t) (b : Array_ref.t) =
  a.Array_ref.base = b.Array_ref.base
  &&
  match Affine.is_const (Affine.sub a.Array_ref.offset b.Array_ref.offset) with
  | Some d -> abs d < line_bytes
  | None -> false

let form ~line_bytes refs =
  let groups = ref [] in
  List.iter
    (fun r ->
      let rec place = function
        | [] -> groups := !groups @ [ ref [ r ] ]
        | g :: rest ->
            if List.exists (same_group ~line_bytes r) !g then g := r :: !g
            else place rest
      in
      place !groups)
    refs;
  List.map
    (fun g ->
      let members = List.rev !g in
      match members with
      | [] -> assert false
      | leader :: _ ->
          { leader; members; has_write = List.exists Array_ref.is_write members })
    !groups

let count ~line_bytes refs = List.length (form ~line_bytes refs)

(** Lowering: find the OpenMP-annotated loop nest of a function and build a
    {!Loop_nest.t} — the paper's compiler pass over the IR (§IV) that
    collects loop bounds, steps, index variables, chunk size, and the array
    reference list of the innermost loop body.

    Shared global arrays/scalars produce references; locals, loop indices,
    [private]- and [reduction]-clause variables are thread-private and
    produce none. *)

exception Lower_error of string

val lower :
  Minic.Typecheck.checked ->
  func:string ->
  params:(string * int) list ->
  Loop_nest.t
(** [lower checked ~func ~params] locates the (first) [#pragma omp parallel
    for] loop in [func], normalizes the enclosing and enclosed loops, and
    extracts the innermost references.  [params] binds free identifiers in
    bounds and steps (e.g. [("num_threads", 8)]).

    @raise Lower_error when there is no pragma loop, the nest is imperfect
    (statements between loop levels), a loop step is not a positive
    constant, a condition is not [var < e] / [var <= e], or a subscript is
    not affine in the loop variables. *)

val lower_all :
  Minic.Typecheck.checked ->
  func:string ->
  params:(string * int) list ->
  Loop_nest.t list
(** Every parallel loop nest of [func], in source order ([lower] returns
    the first).  Parallel loops nested inside another parallel loop are not
    descended into (nested parallelism is not modeled). *)

val find_parallel_functions : Minic.Ast.program -> string list
(** Names of functions containing at least one OpenMP parallel-for. *)

(** Reference groups in the Open64 cache-model sense (§II-B2): references to
    the same array whose byte offsets differ by a constant smaller than the
    line size exhibit group-spatial reuse and contribute a single footprint
    ([a\[i\]] and [a\[i+1\]] count once). *)

type t = {
  leader : Array_ref.t;
  members : Array_ref.t list;  (** includes the leader *)
  has_write : bool;
}

val form : line_bytes:int -> Array_ref.t list -> t list
(** Partition references into groups: same base, offset difference constant
    with absolute value < [line_bytes]. *)

val count : line_bytes:int -> Array_ref.t list -> int
(** Number of groups — the per-iteration footprint count. *)

(** Integer evaluation of AST expressions under an environment — used for
    loop bounds (which may use parameters like [num_threads]) and pragma
    constants. *)

exception Unbound of string
exception Not_integer of string

val eval : (string -> int option) -> Minic.Ast.expr -> int
(** C-like semantics: relational and logical operators yield 0/1, division
    truncates toward zero.  @raise Unbound for unresolvable identifiers,
    [Division_by_zero], or @raise Not_integer for float literals and calls. *)

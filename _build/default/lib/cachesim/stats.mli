(** Counters collected by the coherent-cache simulator. *)

type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable c2c_transfers : int;  (** lines sourced from a remote dirty copy *)
  mutable mem_fetches : int;
  mutable cold_misses : int;
  mutable capacity_misses : int;
  mutable coherence_true : int;
      (** invalidation misses where the core touches remotely-written words *)
  mutable coherence_false : int;
      (** invalidation misses on untouched words — false sharing *)
  mutable upgrades : int;  (** write hits on Shared lines *)
  mutable invalidations_sent : int;
  mutable invalidations_received : int;
  mutable writebacks : int;
  mutable stall_cycles : int;  (** memory-stall cycles accumulated *)
}

val create : unit -> t
val accesses : t -> int
val misses : t -> int
val coherence_misses : t -> int
val add_into : t -> t -> unit
(** [add_into acc x] accumulates [x] into [acc]. *)

val sum : t list -> t

val sub : t -> t -> t
(** [sub a b] is the counter-wise difference [a - b]; used to isolate the
    activity of one measured phase from a running simulator. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit

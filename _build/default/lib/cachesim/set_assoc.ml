type t = { geom : Archspec.Cache_geom.t; sets : unit Lru_stack.t array }

let create geom =
  let nsets = Archspec.Cache_geom.sets geom in
  {
    geom;
    sets =
      Array.init nsets (fun _ ->
          Lru_stack.create ~capacity:geom.Archspec.Cache_geom.associativity);
  }

let set_of t line = t.sets.(Archspec.Cache_geom.set_of_line t.geom line)

let access t line =
  let s = set_of t line in
  if Lru_stack.mem s line then begin
    ignore (Lru_stack.access s line ());
    `Hit
  end
  else
    match Lru_stack.access s line () with
    | Some (victim, ()) -> `Miss (Some victim)
    | None -> `Miss None

let mem t line = Lru_stack.mem (set_of t line) line
let invalidate t line = Lru_stack.remove (set_of t line) line <> None
let size t = Array.fold_left (fun acc s -> acc + Lru_stack.size s) 0 t.sets

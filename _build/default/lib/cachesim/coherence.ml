type source = L1 | L2 | L3 | C2C | Memory
type miss_kind = Cold | Capacity | Coherence_true | Coherence_false

type result = { latency : int; source : source; miss : miss_kind option }

type dir_entry = {
  mutable holders : int;  (* bitmask over cores *)
  mutable dirty : int;  (* core owning a Modified copy; -1 = none *)
  mutable dirty_words : int;
      (* words written by the current dirty owner since it acquired the
         line in Modified state; used to classify first-access misses that
         steal a dirty line (an RFO on a falsely-shared line is a
         false-sharing miss even if the requester never held the line) *)
  pending : int array;
      (* per core: mask of 4-byte words written remotely since this core
         lost its copy to an invalidation; 0 when the core was never
         invalidated on this line *)
}

type t = {
  arch : Archspec.Arch.t;
  cores : int;
  line_bytes : int;
  priv : Private_cache.t array;
  l3 : unit Lru_stack.t array;  (* one per socket *)
  dir : dir_entry Int_table.t;
  stats : Stats.t array;
}

let word_bytes = 4

let create ?cores (arch : Archspec.Arch.t) =
  let cores = match cores with Some c -> c | None -> arch.Archspec.Arch.cores in
  if cores < 1 then invalid_arg "Coherence.create: cores < 1";
  let sockets =
    (cores + arch.Archspec.Arch.cores_per_socket - 1)
    / arch.Archspec.Arch.cores_per_socket
  in
  {
    arch;
    cores;
    line_bytes = Archspec.Arch.line_bytes arch;
    priv =
      Array.init cores (fun _ ->
          Private_cache.create ~l1:arch.Archspec.Arch.l1
            ~l2:arch.Archspec.Arch.l2);
    l3 =
      Array.init sockets (fun _ ->
          Lru_stack.create
            ~capacity:(Archspec.Cache_geom.lines arch.Archspec.Arch.l3));
    dir = Int_table.create ~initial:4096 ();
    stats = Array.init cores (fun _ -> Stats.create ());
  }

let socket_of t core = core / t.arch.Archspec.Arch.cores_per_socket

let word_mask ~line_bytes ~addr ~size =
  let off = addr mod line_bytes in
  let first = off / word_bytes in
  let last = (off + size - 1) / word_bytes in
  ((1 lsl (last - first + 1)) - 1) lsl first

let entry_of t line = Int_table.find_opt t.dir line

let new_entry t line =
  let e =
    { holders = 0; dirty = -1; dirty_words = 0;
      pending = Array.make t.cores 0 }
  in
  Int_table.set t.dir line e;
  e

let bit core = 1 lsl core
let others_holding e core = e.holders land lnot (bit core)

(* A core's private hierarchy dropped a line (capacity eviction):
   directory forgets it; a dirty copy is written back. *)
let handle_eviction t core victim =
  let s = Int_table.find_slot t.dir victim in
  if s >= 0 then begin
    let e = Int_table.value_at t.dir s in
    e.holders <- e.holders land lnot (bit core);
    if e.dirty = core then begin
      e.dirty <- -1;
      e.dirty_words <- 0;
      t.stats.(core).Stats.writebacks <- t.stats.(core).Stats.writebacks + 1;
      (* the written-back line lands in the evictor's socket L3 *)
      ignore (Lru_stack.access_int t.l3.(socket_of t core) victim ())
    end;
    (* a voluntary eviction means the next miss is a capacity miss, not a
       coherence miss *)
    e.pending.(core) <- 0
  end

(* Invalidate every other holder of [line]; record the written words in
   their pending masks for later true/false-sharing classification. *)
let invalidate_others t core line e mask =
  let st = t.stats.(core) in
  for o = 0 to t.cores - 1 do
    if o <> core && e.holders land bit o <> 0 then begin
      ignore (Private_cache.invalidate t.priv.(o) line);
      e.holders <- e.holders land lnot (bit o);
      e.pending.(o) <- e.pending.(o) lor mask;
      st.Stats.invalidations_sent <- st.Stats.invalidations_sent + 1;
      t.stats.(o).Stats.invalidations_received <-
        t.stats.(o).Stats.invalidations_received + 1
    end
  done

let upgrade_latency t = (t.arch.Archspec.Arch.coherence_latency + 1) / 2

(* one access fully inside one line *)
let access_line t ~core ~addr ~size ~write =
  let st = t.stats.(core) in
  if write then st.Stats.stores <- st.Stats.stores + 1
  else st.Stats.loads <- st.Stats.loads + 1;
  let line = addr / t.line_bytes in
  let mask = word_mask ~line_bytes:t.line_bytes ~addr ~size in
  let code = Private_cache.access_fast t.priv.(core) line in
  if code >= 0 then handle_eviction t core code;
  let finish_write e =
    if write then begin
      (* write-invalidate: drop all other copies, become Modified *)
      if others_holding e core <> 0 then invalidate_others t core line e mask;
      if e.dirty = core then e.dirty_words <- e.dirty_words lor mask
      else e.dirty_words <- mask;
      e.dirty <- core
    end
  in
  if code = Private_cache.hit_l1 || code = Private_cache.hit_l2 then begin
    let base_latency, source =
      if code = Private_cache.hit_l1 then begin
        st.Stats.l1_hits <- st.Stats.l1_hits + 1;
        (t.arch.Archspec.Arch.l1.Archspec.Cache_geom.hit_latency, L1)
      end
      else begin
        st.Stats.l2_hits <- st.Stats.l2_hits + 1;
        (t.arch.Archspec.Arch.l2.Archspec.Cache_geom.hit_latency, L2)
      end
    in
    if not write then begin
      (* read hit: no coherence state can change, skip the directory *)
      st.Stats.stall_cycles <- st.Stats.stall_cycles + base_latency;
      { latency = base_latency; source; miss = None }
    end
    else begin
      let e =
        let s = Int_table.find_slot t.dir line in
        (* holding a line the directory does not know cannot happen *)
        assert (s >= 0);
        Int_table.value_at t.dir s
      in
      let latency =
        if not (Line_state.writable
                  (if e.dirty = core then Line_state.Modified
                   else if others_holding e core = 0 then Line_state.Exclusive
                   else Line_state.Shared))
        then begin
          (* write hit on a Shared line: upgrade *)
          st.Stats.upgrades <- st.Stats.upgrades + 1;
          base_latency + upgrade_latency t
        end
        else base_latency
      in
      finish_write e;
      st.Stats.stall_cycles <- st.Stats.stall_cycles + latency;
      { latency; source; miss = None }
    end
  end
  else begin
      let e, kind, fetch_latency, source =
        let slot = Int_table.find_slot t.dir line in
        if slot < 0 then begin
          let e = new_entry t line in
          st.Stats.mem_fetches <- st.Stats.mem_fetches + 1;
          ignore (Lru_stack.access_int t.l3.(socket_of t core) line ());
          (e, Cold, t.arch.Archspec.Arch.mem_latency, Memory)
        end
        else begin
            let e = Int_table.value_at t.dir slot in
            (* words dirtied by a remote Modified copy, captured before the
               fetch downgrades it; -1 = no remote dirty owner *)
            let remote_dirty_words =
              if e.dirty >= 0 && e.dirty <> core then e.dirty_words else -1
            in
            let fetch_latency, source =
              if e.dirty >= 0 && e.dirty <> core then begin
                (* remote dirty copy: cache-to-cache transfer; the owner
                   keeps a Shared copy on a read, loses it on a write
                   (handled by finish_write) *)
                let o = e.dirty in
                st.Stats.c2c_transfers <- st.Stats.c2c_transfers + 1;
                e.dirty <- -1;
                e.dirty_words <- 0;
                t.stats.(o).Stats.writebacks <-
                  t.stats.(o).Stats.writebacks + 1;
                ignore (Lru_stack.access_int t.l3.(socket_of t o) line ());
                (t.arch.Archspec.Arch.coherence_latency, C2C)
              end
              else begin
                let l3 = t.l3.(socket_of t core) in
                if Lru_stack.touch l3 line then begin
                  st.Stats.l3_hits <- st.Stats.l3_hits + 1;
                  (t.arch.Archspec.Arch.l3.Archspec.Cache_geom.hit_latency, L3)
                end
                else begin
                  st.Stats.mem_fetches <- st.Stats.mem_fetches + 1;
                  ignore (Lru_stack.access_int l3 line ());
                  (t.arch.Archspec.Arch.mem_latency, Memory)
                end
              end
            in
            let kind =
              let p = e.pending.(core) in
              if p <> 0 then
                if p land mask <> 0 then Coherence_true else Coherence_false
              else if remote_dirty_words >= 0 then
                (* stealing a dirty line: sharing miss even on the core's
                   first access *)
                if remote_dirty_words land mask <> 0 then Coherence_true
                else Coherence_false
              else Capacity
            in
            (e, kind, fetch_latency, source)
        end
      in
      (match kind with
      | Cold -> st.Stats.cold_misses <- st.Stats.cold_misses + 1
      | Capacity -> st.Stats.capacity_misses <- st.Stats.capacity_misses + 1
      | Coherence_true -> st.Stats.coherence_true <- st.Stats.coherence_true + 1
      | Coherence_false ->
          st.Stats.coherence_false <- st.Stats.coherence_false + 1);
      e.pending.(core) <- 0;
      e.holders <- e.holders lor bit core;
      finish_write e;
      st.Stats.stall_cycles <- st.Stats.stall_cycles + fetch_latency;
      { latency = fetch_latency; source; miss = Some kind }
  end

let access t ~core ~addr ~size ~write =
  if core < 0 || core >= t.cores then invalid_arg "Coherence.access: bad core";
  if size <= 0 then invalid_arg "Coherence.access: size <= 0";
  if addr / t.line_bytes = (addr + size - 1) / t.line_bytes then
    (* common case: the access sits inside one line *)
    access_line t ~core ~addr ~size ~write
  else
  (* split accesses that straddle a line boundary *)
  let rec go addr size acc_latency worst =
    let line_end = ((addr / t.line_bytes) + 1) * t.line_bytes in
    let here = min size (line_end - addr) in
    let r = access_line t ~core ~addr ~size:here ~write in
    let worst =
      match (worst, r.miss) with
      | None, _ -> Some r
      | Some w, Some _ when w.miss = None -> Some r
      | Some w, _ -> Some w
    in
    if here = size then
      let w = Option.get worst in
      { w with latency = acc_latency + r.latency }
    else go (addr + here) (size - here) (acc_latency + r.latency) worst
  in
  go addr size 0 None

let read t ~core ~addr ~size = access t ~core ~addr ~size ~write:false
let write t ~core ~addr ~size = access t ~core ~addr ~size ~write:true

let stats_of_core t core = t.stats.(core)
let aggregate_stats t = Stats.sum (Array.to_list t.stats)

let holders_of_line t line =
  match entry_of t line with
  | None -> []
  | Some e ->
      let rec go c acc =
        if c < 0 then acc
        else go (c - 1) (if e.holders land bit c <> 0 then c :: acc else acc)
      in
      go (t.cores - 1) []

let dirty_owner_of_line t line =
  match entry_of t line with
  | None -> None
  | Some e -> if e.dirty >= 0 then Some e.dirty else None

lib/cachesim/bitset.ml: Array

lib/cachesim/stats.ml: Format List

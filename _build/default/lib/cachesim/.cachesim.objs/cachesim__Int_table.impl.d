lib/cachesim/int_table.ml: Array

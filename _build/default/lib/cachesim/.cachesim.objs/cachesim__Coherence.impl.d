lib/cachesim/coherence.ml: Archspec Array Int_table Line_state Lru_stack Option Private_cache Stats

lib/cachesim/coherence.ml: Archspec Array Hashtbl Line_state Lru_stack Option Private_cache Stats

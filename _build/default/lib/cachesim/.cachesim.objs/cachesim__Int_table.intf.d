lib/cachesim/int_table.mli:

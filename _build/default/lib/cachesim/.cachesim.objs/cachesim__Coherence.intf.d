lib/cachesim/coherence.mli: Archspec Stats

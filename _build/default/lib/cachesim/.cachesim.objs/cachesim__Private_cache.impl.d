lib/cachesim/private_cache.ml: Archspec Lru_stack

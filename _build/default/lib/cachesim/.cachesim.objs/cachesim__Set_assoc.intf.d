lib/cachesim/set_assoc.mli: Archspec

lib/cachesim/bitset.mli:

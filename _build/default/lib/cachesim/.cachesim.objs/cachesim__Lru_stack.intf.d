lib/cachesim/lru_stack.mli:

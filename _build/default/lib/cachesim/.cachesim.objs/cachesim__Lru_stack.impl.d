lib/cachesim/lru_stack.ml: Int_table List Option

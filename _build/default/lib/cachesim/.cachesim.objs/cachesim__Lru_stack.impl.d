lib/cachesim/lru_stack.ml: Hashtbl List

lib/cachesim/line_state.mli: Format

lib/cachesim/private_cache.mli: Archspec

lib/cachesim/line_state.ml: Format

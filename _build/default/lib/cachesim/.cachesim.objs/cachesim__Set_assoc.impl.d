lib/cachesim/set_assoc.ml: Archspec Array Lru_stack

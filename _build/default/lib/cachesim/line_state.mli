(** MESI coherence states for lines held in private caches. *)

type t = Modified | Exclusive | Shared | Invalid

val name : t -> string
val writable : t -> bool
(** true for Modified and Exclusive *)

val pp : Format.formatter -> t -> unit

(** A set-associative cache with per-set LRU replacement — the variant the
    paper's model deliberately does {e not} use (§III-C argues fully
    associative modeling is valid for highly associative caches).  Provided
    for the ablation benchmark comparing both replacement models. *)

type t

val create : Archspec.Cache_geom.t -> t

val access : t -> int -> [ `Hit | `Miss of int option ]
(** [access t line] touches a line; on a miss the per-set LRU victim (if
    the set was full) is returned. *)

val mem : t -> int -> bool
val invalidate : t -> int -> bool
val size : t -> int

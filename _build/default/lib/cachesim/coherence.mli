(** A write-invalidate MESI-coherent memory hierarchy for [n] cores:
    per-core private L1+L2 ({!Private_cache}), one shared L3 per socket, a
    directory tracking holders and the dirty owner of every line, and
    word-granularity classification of invalidation misses into true and
    false sharing.

    This is the repo's stand-in for the paper's 48-core testbed: the
    execution simulator drives it with per-thread memory traces and reads
    back latencies, so that "measured" loop times (paper Tables I–III,
    column 2–3) can be produced deterministically. *)

type t

type source = L1 | L2 | L3 | C2C | Memory
(** Where the data was found. *)

type miss_kind = Cold | Capacity | Coherence_true | Coherence_false

type result = {
  latency : int;  (** stall cycles charged to the access *)
  source : source;
  miss : miss_kind option;  (** [None] on private-hierarchy hits *)
}

val create : ?cores:int -> Archspec.Arch.t -> t
(** [cores] defaults to [arch.cores].  Word granularity for true/false
    sharing classification is 4 bytes. *)

val access : t -> core:int -> addr:int -> size:int -> write:bool -> result
(** Perform one memory access.  @raise Invalid_argument for a bad core id
    or non-positive size.  An access spanning a line boundary is split and
    the latencies summed. *)

val read : t -> core:int -> addr:int -> size:int -> result
val write : t -> core:int -> addr:int -> size:int -> result

val stats_of_core : t -> int -> Stats.t
val aggregate_stats : t -> Stats.t

val holders_of_line : t -> int -> int list
(** Cores currently holding a line (for tests). *)

val dirty_owner_of_line : t -> int -> int option

val word_mask : line_bytes:int -> addr:int -> size:int -> int
(** Bitmask of the 4-byte words of a line touched by an access (exposed for
    tests). *)

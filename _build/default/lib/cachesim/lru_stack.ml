(* Circular doubly-linked list threaded through an open-addressing int
   table (Int_table): O(1) insert, move-to-front, and bottom eviction.

   The list uses a sentinel node (created lazily at the first insertion,
   when a value of type 'a is available), so links are plain mutable
   fields — no options on the hot path.  Once the stack is at capacity,
   every insertion reuses the evicted bottom node in place, so the
   steady-state {!access_int} path allocates nothing. *)

type 'a node = {
  mutable key : int;
  mutable value : 'a;
  mutable prev : 'a node;  (* toward the top (MRU) *)
  mutable next : 'a node;  (* toward the bottom (LRU) *)
}

type 'a t = {
  mutable sent : 'a node option;
      (* sentinel: [sent.next] is the MRU entry, [sent.prev] the LRU *)
  tbl : 'a node Int_table.t;
  cap : int;
}

let no_key = min_int

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru_stack.create: capacity < 1";
  { sent = None; tbl = Int_table.create (); cap = capacity }

let capacity t = t.cap
let size t = Int_table.length t.tbl
let mem t key = Int_table.mem t.tbl key

let find t key =
  let s = Int_table.find_slot t.tbl key in
  if s < 0 then None else Some (Int_table.value_at t.tbl s).value

let get t key ~default =
  let s = Int_table.find_slot t.tbl key in
  if s < 0 then default else (Int_table.value_at t.tbl s).value

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev

let push_front sent n =
  n.next <- sent.next;
  n.prev <- sent;
  sent.next.prev <- n;
  sent.next <- n

let sentinel t value =
  match t.sent with
  | Some s -> s
  | None ->
      let rec s = { key = no_key; value; prev = s; next = s } in
      t.sent <- Some s;
      s

(* Insert a fresh key, evicting (and reusing) the bottom node when at
   capacity; returns the reused node's old key, or [no_key]. *)
let insert_new t sent key value =
  if Int_table.length t.tbl >= t.cap then begin
    let bottom = sent.prev in
    let evicted = bottom.key in
    ignore (Int_table.remove t.tbl evicted);
    bottom.key <- key;
    bottom.value <- value;
    unlink bottom;
    push_front sent bottom;
    Int_table.set t.tbl key bottom;
    evicted
  end
  else begin
    let n = { key; value; prev = sent; next = sent } in
    push_front sent n;
    Int_table.set t.tbl key n;
    no_key
  end

let touch t key =
  let s = Int_table.find_slot t.tbl key in
  if s < 0 then false
  else begin
    let n = Int_table.value_at t.tbl s in
    let sent = Option.get t.sent in
    if sent.next != n then begin
      unlink n;
      push_front sent n
    end;
    true
  end

let access_int t key value =
  let s = Int_table.find_slot t.tbl key in
  if s >= 0 then begin
    let n = Int_table.value_at t.tbl s in
    n.value <- value;
    let sent = Option.get t.sent in
    if sent.next != n then begin
      unlink n;
      push_front sent n
    end;
    no_key
  end
  else insert_new t (sentinel t value) key value

let access t key value =
  let s = Int_table.find_slot t.tbl key in
  if s >= 0 then begin
    ignore (access_int t key value);
    None
  end
  else begin
    let sent = sentinel t value in
    let full = Int_table.length t.tbl >= t.cap in
    let bottom_value = if full then Some sent.prev.value else None in
    let evicted = insert_new t sent key value in
    match bottom_value with
    | Some v when evicted <> no_key -> Some (evicted, v)
    | _ -> None
  end

let update t key f =
  let s = Int_table.find_slot t.tbl key in
  if s < 0 then false
  else begin
    let n = Int_table.value_at t.tbl s in
    n.value <- f n.value;
    true
  end

let remove_key t key =
  let s = Int_table.find_slot t.tbl key in
  if s < 0 then false
  else begin
    unlink (Int_table.value_at t.tbl s);
    ignore (Int_table.remove t.tbl key);
    true
  end

let remove t key =
  let s = Int_table.find_slot t.tbl key in
  if s < 0 then None
  else begin
    let n = Int_table.value_at t.tbl s in
    unlink n;
    ignore (Int_table.remove t.tbl key);
    Some n.value
  end

let distance t key =
  if not (Int_table.mem t.tbl key) then None
  else
    match t.sent with
    | None -> None
    | Some sent ->
        let rec go d n = if n.key = key then Some d else go (d + 1) n.next in
        go 0 sent.next

let to_alist t =
  match t.sent with
  | None -> []
  | Some sent ->
      let rec go acc n =
        if n == sent then List.rev acc else go ((n.key, n.value) :: acc) n.next
      in
      go [] sent.next

let clear t =
  Int_table.clear t.tbl;
  match t.sent with
  | Some s ->
      s.next <- s;
      s.prev <- s
  | None -> ()

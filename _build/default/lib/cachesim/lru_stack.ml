(* Doubly-linked list threaded through a hash table: O(1) insert, move-to-
   front, and bottom eviction. *)

type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;  (* toward the top (MRU) *)
  mutable next : 'a node option;  (* toward the bottom (LRU) *)
}

type 'a t = {
  mutable head : 'a node option;
  mutable tail : 'a node option;
  tbl : (int, 'a node) Hashtbl.t;
  cap : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru_stack.create: capacity < 1";
  { head = None; tail = None; tbl = Hashtbl.create 64; cap = capacity }

let capacity t = t.cap
let size t = Hashtbl.length t.tbl
let mem t key = Hashtbl.mem t.tbl key

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n -> Some n.value
  | None -> None

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.head <- n.next);
  (match n.next with
  | Some nx -> nx.prev <- n.prev
  | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let access t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n;
      None
  | None ->
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n;
      if Hashtbl.length t.tbl > t.cap then begin
        match t.tail with
        | Some bottom ->
            unlink t bottom;
            Hashtbl.remove t.tbl bottom.key;
            Some (bottom.key, bottom.value)
        | None -> assert false
      end
      else None

let update t key f =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- f n.value;
      true
  | None -> false

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl key;
      Some n.value
  | None -> None

let distance t key =
  if not (Hashtbl.mem t.tbl key) then None
  else begin
    let rec go d = function
      | None -> None
      | Some n -> if n.key = key then Some d else go (d + 1) n.next
    in
    go 0 t.head
  end

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

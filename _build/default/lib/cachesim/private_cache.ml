type t = { l1 : unit Lru_stack.t; l2 : unit Lru_stack.t }

type hit = L1_hit | L2_hit | Priv_miss

let create ~l1 ~l2 =
  {
    l1 = Lru_stack.create ~capacity:(Archspec.Cache_geom.lines l1);
    l2 = Lru_stack.create ~capacity:(Archspec.Cache_geom.lines l2);
  }

(* Fill [line] into both levels; an L2 victim is back-invalidated from L1
   (inclusion) and reported. *)
let fill t line =
  ignore (Lru_stack.access t.l1 line ());
  match Lru_stack.access t.l2 line () with
  | Some (victim, ()) ->
      ignore (Lru_stack.remove t.l1 victim);
      Some victim
  | None -> None

let access t line =
  if Lru_stack.mem t.l1 line then begin
    ignore (Lru_stack.access t.l1 line ());
    (L1_hit, None)
  end
  else if Lru_stack.mem t.l2 line then begin
    ignore (Lru_stack.access t.l2 line ());
    ignore (Lru_stack.access t.l1 line ());
    (L2_hit, None)
  end
  else begin
    let evicted = fill t line in
    (Priv_miss, evicted)
  end

let invalidate t line =
  let in_l2 = Lru_stack.remove t.l2 line <> None in
  let in_l1 = Lru_stack.remove t.l1 line <> None in
  in_l1 || in_l2

let holds t line = Lru_stack.mem t.l2 line || Lru_stack.mem t.l1 line
let lines_held t = Lru_stack.size t.l2

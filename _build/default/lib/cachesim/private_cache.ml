type t = { l1 : unit Lru_stack.t; l2 : unit Lru_stack.t }

type hit = L1_hit | L2_hit | Priv_miss

let create ~l1 ~l2 =
  {
    l1 = Lru_stack.create ~capacity:(Archspec.Cache_geom.lines l1);
    l2 = Lru_stack.create ~capacity:(Archspec.Cache_geom.lines l2);
  }

(* packed result codes for the allocation-free path; evicted lines are
   always >= 0, so small negatives are free *)
let hit_l1 = -1
let hit_l2 = -2
let miss = -3

let access_fast t line =
  if Lru_stack.touch t.l1 line then hit_l1
  else if Lru_stack.touch t.l2 line then begin
    ignore (Lru_stack.access_int t.l1 line ());
    hit_l2
  end
  else begin
    (* fill both levels; an L2 victim is back-invalidated from L1
       (inclusion) and reported *)
    ignore (Lru_stack.access_int t.l1 line ());
    let victim = Lru_stack.access_int t.l2 line () in
    if victim = Lru_stack.no_key then miss
    else begin
      ignore (Lru_stack.remove_key t.l1 victim);
      victim
    end
  end

let access t line =
  match access_fast t line with
  | -1 -> (L1_hit, None)
  | -2 -> (L2_hit, None)
  | -3 -> (Priv_miss, None)
  | victim -> (Priv_miss, Some victim)

let invalidate t line =
  let in_l2 = Lru_stack.remove_key t.l2 line in
  let in_l1 = Lru_stack.remove_key t.l1 line in
  in_l1 || in_l2

let holds t line = Lru_stack.mem t.l2 line || Lru_stack.mem t.l1 line
let lines_held t = Lru_stack.size t.l2

type t = Modified | Exclusive | Shared | Invalid

let name = function
  | Modified -> "M"
  | Exclusive -> "E"
  | Shared -> "S"
  | Invalid -> "I"

let writable = function
  | Modified | Exclusive -> true
  | Shared | Invalid -> false

let pp ppf t = Format.pp_print_string ppf (name t)

(** An LRU stack over integer keys (cache-line indices) with an arbitrary
    payload per entry.

    This is the data structure behind the paper's stack-distance analysis
    (§III-C): most-recently-used on top, least-recently-used at the bottom,
    eviction from the bottom when capacity is exceeded — i.e. a fully
    associative LRU cache.  All operations are O(1) except {!distance} and
    {!to_alist}. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is the maximum number of entries; use [max_int] for an
    unbounded stack.  @raise Invalid_argument if [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int
val mem : 'a t -> int -> bool
val find : 'a t -> int -> 'a option
(** [find] does not touch recency. *)

val access : 'a t -> int -> 'a -> (int * 'a) option
(** [access t key payload] inserts [key] at the top (or moves it to the top,
    replacing its payload).  Returns the evicted bottom entry if the insert
    overflowed capacity. *)

val update : 'a t -> int -> ('a -> 'a) -> bool
(** Update the payload in place without touching recency; returns [false]
    when absent. *)

val remove : 'a t -> int -> 'a option
(** Remove an entry (invalidation). *)

val distance : 'a t -> int -> int option
(** 0-based stack distance of a key: the number of distinct entries above
    it.  O(distance). *)

val to_alist : 'a t -> (int * 'a) list
(** Entries from most- to least-recently used. *)

val clear : 'a t -> unit

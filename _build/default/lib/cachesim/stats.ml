type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable c2c_transfers : int;
  mutable mem_fetches : int;
  mutable cold_misses : int;
  mutable capacity_misses : int;
  mutable coherence_true : int;
  mutable coherence_false : int;
  mutable upgrades : int;
  mutable invalidations_sent : int;
  mutable invalidations_received : int;
  mutable writebacks : int;
  mutable stall_cycles : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    c2c_transfers = 0;
    mem_fetches = 0;
    cold_misses = 0;
    capacity_misses = 0;
    coherence_true = 0;
    coherence_false = 0;
    upgrades = 0;
    invalidations_sent = 0;
    invalidations_received = 0;
    writebacks = 0;
    stall_cycles = 0;
  }

let accesses t = t.loads + t.stores

let misses t =
  t.cold_misses + t.capacity_misses + t.coherence_true + t.coherence_false

let coherence_misses t = t.coherence_true + t.coherence_false

let add_into acc x =
  acc.loads <- acc.loads + x.loads;
  acc.stores <- acc.stores + x.stores;
  acc.l1_hits <- acc.l1_hits + x.l1_hits;
  acc.l2_hits <- acc.l2_hits + x.l2_hits;
  acc.l3_hits <- acc.l3_hits + x.l3_hits;
  acc.c2c_transfers <- acc.c2c_transfers + x.c2c_transfers;
  acc.mem_fetches <- acc.mem_fetches + x.mem_fetches;
  acc.cold_misses <- acc.cold_misses + x.cold_misses;
  acc.capacity_misses <- acc.capacity_misses + x.capacity_misses;
  acc.coherence_true <- acc.coherence_true + x.coherence_true;
  acc.coherence_false <- acc.coherence_false + x.coherence_false;
  acc.upgrades <- acc.upgrades + x.upgrades;
  acc.invalidations_sent <- acc.invalidations_sent + x.invalidations_sent;
  acc.invalidations_received <-
    acc.invalidations_received + x.invalidations_received;
  acc.writebacks <- acc.writebacks + x.writebacks;
  acc.stall_cycles <- acc.stall_cycles + x.stall_cycles

let sum l =
  let acc = create () in
  List.iter (add_into acc) l;
  acc

let sub a b =
  {
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    l1_hits = a.l1_hits - b.l1_hits;
    l2_hits = a.l2_hits - b.l2_hits;
    l3_hits = a.l3_hits - b.l3_hits;
    c2c_transfers = a.c2c_transfers - b.c2c_transfers;
    mem_fetches = a.mem_fetches - b.mem_fetches;
    cold_misses = a.cold_misses - b.cold_misses;
    capacity_misses = a.capacity_misses - b.capacity_misses;
    coherence_true = a.coherence_true - b.coherence_true;
    coherence_false = a.coherence_false - b.coherence_false;
    upgrades = a.upgrades - b.upgrades;
    invalidations_sent = a.invalidations_sent - b.invalidations_sent;
    invalidations_received =
      a.invalidations_received - b.invalidations_received;
    writebacks = a.writebacks - b.writebacks;
    stall_cycles = a.stall_cycles - b.stall_cycles;
  }

let copy t = sum [ t ]

let pp ppf t =
  Format.fprintf ppf
    "@[<v>accesses: %d (%d ld, %d st)@,\
     hits: L1 %d, L2 %d, L3 %d, c2c %d, mem %d@,\
     misses: cold %d, capacity %d, coherence-true %d, coherence-false %d@,\
     upgrades %d, inval sent %d recv %d, writebacks %d@,\
     stall cycles %d@]"
    (accesses t) t.loads t.stores t.l1_hits t.l2_hits t.l3_hits
    t.c2c_transfers t.mem_fetches t.cold_misses t.capacity_misses
    t.coherence_true t.coherence_false t.upgrades t.invalidations_sent
    t.invalidations_received t.writebacks t.stall_cycles

(** One core's private cache hierarchy (inclusive L1 + L2), tracking line
    membership and recency.  Coherence state lives in {!Coherence}.

    Both levels are modeled as fully associative LRU stacks of the
    configured capacity (the paper's fully-associative argument, §III-C,
    applied to the simulator as well); {!Set_assoc} offers the
    set-associative variant for the ablation study. *)

type t

type hit = L1_hit | L2_hit | Priv_miss

val create : l1:Archspec.Cache_geom.t -> l2:Archspec.Cache_geom.t -> t

val hit_l1 : int
val hit_l2 : int
val miss : int

val access_fast : t -> int -> int
(** Allocation-free {!access}: [{!hit_l1}] = L1 hit, [{!hit_l2}] = L2 hit,
    [{!miss}] = miss with no eviction, and any value [>= 0] is a miss that
    evicted that line from the hierarchy. *)

val access : t -> int -> hit * int option
(** [access t line] touches a line: on [L1_hit] recency is updated; on
    [L2_hit] the line is promoted into L1; on [Priv_miss] the line is filled
    into both levels.  The second component is the line leaving the private
    hierarchy entirely (an L2 eviction, with back-invalidation of L1),
    which the caller must report to the directory. *)

val invalidate : t -> int -> bool
(** Drop a line from both levels; [true] if it was present. *)

val holds : t -> int -> bool
val lines_held : t -> int

type t = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  associativity : int;
  hit_latency : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let v ?(hit_latency = 1) ~name ~size_bytes ~line_bytes ~associativity () =
  if size_bytes <= 0 then invalid_arg "Cache_geom.v: size_bytes <= 0";
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache_geom.v: line_bytes not a power of two";
  if associativity <= 0 then invalid_arg "Cache_geom.v: associativity <= 0";
  if size_bytes mod (line_bytes * associativity) <> 0 then
    invalid_arg "Cache_geom.v: size not a multiple of line_bytes*assoc";
  { name; size_bytes; line_bytes; associativity; hit_latency }

let lines t = t.size_bytes / t.line_bytes
let sets t = lines t / t.associativity
let fully_associative t = t.associativity = lines t
let line_of_addr t addr = addr / t.line_bytes
let set_of_line t line = line mod sets t

let pp ppf t =
  Format.fprintf ppf "%s(%dKB, %dB lines, %d-way, %dcy)" t.name
    (t.size_bytes / 1024) t.line_bytes t.associativity t.hit_latency

(** Operation classes, latencies and issue resources of a modeled CPU core.

    This is the machine side of the Open64-style processor model (paper
    Fig. 3): the model schedules the operations of one innermost-loop
    iteration against the available functional units ([units_per_cycle]) and
    accounts for dependence stalls using per-class result [latency]. *)

type op_class =
  | Int_alu  (** integer add/sub/compare/logic *)
  | Int_mul  (** integer multiply, divide, modulo *)
  | Fp_add  (** floating-point add/sub *)
  | Fp_mul  (** floating-point multiply *)
  | Fp_div  (** floating-point divide *)
  | Fp_special  (** sin, cos, sqrt, exp... (libm-style) *)
  | Load  (** memory read issue slot (cache latency modeled separately) *)
  | Store  (** memory write issue slot *)
  | Branch  (** conditional branch *)

val all_classes : op_class list
val op_class_name : op_class -> string

type t = {
  name : string;
  issue_width : int;  (** max instructions issued per cycle *)
  latency : op_class -> int;  (** result latency in cycles *)
  units_per_cycle : op_class -> int;  (** ops of this class issuable/cycle *)
}

val default : t
(** A generic 3-wide out-of-order core, close to the 2012-era AMD Opteron
    cores of the paper's testbed. *)

val pp : Format.formatter -> t -> unit

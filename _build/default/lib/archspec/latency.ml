type op_class =
  | Int_alu
  | Int_mul
  | Fp_add
  | Fp_mul
  | Fp_div
  | Fp_special
  | Load
  | Store
  | Branch

let all_classes =
  [ Int_alu; Int_mul; Fp_add; Fp_mul; Fp_div; Fp_special; Load; Store; Branch ]

let op_class_name = function
  | Int_alu -> "int_alu"
  | Int_mul -> "int_mul"
  | Fp_add -> "fp_add"
  | Fp_mul -> "fp_mul"
  | Fp_div -> "fp_div"
  | Fp_special -> "fp_special"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"

type t = {
  name : string;
  issue_width : int;
  latency : op_class -> int;
  units_per_cycle : op_class -> int;
}

let default =
  let latency = function
    | Int_alu -> 1
    | Int_mul -> 3
    | Fp_add -> 4
    | Fp_mul -> 4
    | Fp_div -> 20
    | Fp_special -> 40
    | Load -> 3 (* L1-hit latency; misses are the cache model's job *)
    | Store -> 1
    | Branch -> 1
  and units_per_cycle = function
    | Int_alu -> 3
    | Int_mul -> 1
    | Fp_add -> 1
    | Fp_mul -> 1
    | Fp_div -> 1
    | Fp_special -> 1
    | Load -> 2
    | Store -> 1
    | Branch -> 1
  in
  { name = "generic-ooo-3wide"; issue_width = 3; latency; units_per_cycle }

let pp ppf t =
  Format.fprintf ppf "%s(issue=%d)" t.name t.issue_width

(** Geometry of a single cache level.

    All cache levels in this library are described by the same record; a
    fully-associative cache is one whose [associativity] equals its number of
    lines.  The false-sharing model of the paper simulates private caches as
    fully associative (stack-distance analysis), while the execution
    simulator may use set-associative geometries. *)

type t = {
  name : string;  (** human-readable label, e.g. ["L1d"] *)
  size_bytes : int;  (** total capacity in bytes *)
  line_bytes : int;  (** cache-line size in bytes; must be a power of two *)
  associativity : int;  (** ways per set; [lines t] for fully associative *)
  hit_latency : int;  (** access latency in CPU cycles on a hit *)
}

val v :
  ?hit_latency:int ->
  name:string ->
  size_bytes:int ->
  line_bytes:int ->
  associativity:int ->
  unit ->
  t
(** [v ~name ~size_bytes ~line_bytes ~associativity ()] builds a geometry.
    @raise Invalid_argument if sizes are not positive, [line_bytes] is not a
    power of two, or [size_bytes] is not a multiple of
    [line_bytes * associativity]. *)

val lines : t -> int
(** Total number of lines the cache can hold. *)

val sets : t -> int
(** Number of sets ([lines t / associativity]). *)

val fully_associative : t -> bool

val line_of_addr : t -> int -> int
(** [line_of_addr t addr] is the line index (address divided by line size). *)

val set_of_line : t -> int -> int
(** [set_of_line t line] is the set a given line index maps to. *)

val pp : Format.formatter -> t -> unit

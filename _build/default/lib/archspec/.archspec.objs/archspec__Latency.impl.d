lib/archspec/latency.ml: Format

lib/archspec/cache_geom.ml: Format

lib/archspec/latency.mli: Format

lib/archspec/arch.mli: Cache_geom Format Latency

lib/archspec/arch.ml: Cache_geom Format Latency

lib/archspec/cache_geom.mli: Format

type t = V_int of int | V_float of float

let is_float_type = Minic.Ctypes.is_float

let zero_of ty = if is_float_type ty then V_float 0. else V_int 0

let to_int = function V_int n -> n | V_float f -> int_of_float f
let to_float = function V_int n -> float_of_int n | V_float f -> f
let truthy = function V_int 0 -> false | V_float 0. -> false | _ -> true
let of_bool b = V_int (if b then 1 else 0)

let arith fop iop a b =
  match (a, b) with
  | V_int x, V_int y -> V_int (iop x y)
  | _ -> V_float (fop (to_float a) (to_float b))

let compare_vals a b =
  match (a, b) with
  | V_int x, V_int y -> compare x y
  | _ -> compare (to_float a) (to_float b)

let binop op a b =
  match op with
  | Minic.Ast.Add -> arith ( +. ) ( + ) a b
  | Minic.Ast.Sub -> arith ( -. ) ( - ) a b
  | Minic.Ast.Mul -> arith ( *. ) ( * ) a b
  | Minic.Ast.Div -> (
      match (a, b) with
      | V_int _, V_int 0 -> raise Division_by_zero
      | V_int x, V_int y -> V_int (x / y)
      | _ -> V_float (to_float a /. to_float b))
  | Minic.Ast.Mod -> (
      match (a, b) with
      | V_int _, V_int 0 -> raise Division_by_zero
      | V_int x, V_int y -> V_int (x mod y)
      | _ -> V_float (Float.rem (to_float a) (to_float b)))
  | Minic.Ast.Lt -> of_bool (compare_vals a b < 0)
  | Minic.Ast.Le -> of_bool (compare_vals a b <= 0)
  | Minic.Ast.Gt -> of_bool (compare_vals a b > 0)
  | Minic.Ast.Ge -> of_bool (compare_vals a b >= 0)
  | Minic.Ast.Eq -> of_bool (compare_vals a b = 0)
  | Minic.Ast.Ne -> of_bool (compare_vals a b <> 0)
  | Minic.Ast.And -> of_bool (truthy a && truthy b)
  | Minic.Ast.Or -> of_bool (truthy a || truthy b)

let unop op a =
  match op with
  | Minic.Ast.Neg -> (
      match a with V_int n -> V_int (-n) | V_float f -> V_float (-.f))
  | Minic.Ast.Not -> of_bool (not (truthy a))

let builtin name args =
  let unary f =
    match args with
    | [ a ] -> V_float (f (to_float a))
    | _ -> invalid_arg (name ^ ": bad arity")
  in
  let binary f =
    match args with
    | [ a; b ] -> V_float (f (to_float a) (to_float b))
    | _ -> invalid_arg (name ^ ": bad arity")
  in
  match name with
  | "sin" -> unary sin
  | "cos" -> unary cos
  | "tan" -> unary tan
  | "sqrt" -> unary sqrt
  | "fabs" -> unary Float.abs
  | "exp" -> unary exp
  | "log" -> unary log
  | "pow" -> binary Float.pow
  | "fmin" -> binary Float.min
  | "fmax" -> binary Float.max
  | _ -> invalid_arg ("unknown builtin " ^ name)

let convert ty v =
  if is_float_type ty then V_float (to_float v) else V_int (to_int v)

let pp ppf = function
  | V_int n -> Format.pp_print_int ppf n
  | V_float f -> Format.fprintf ppf "%g" f

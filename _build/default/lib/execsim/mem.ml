(* Doubles are the hot scalar type; going through Bytes costs a boxed
   Int64 plus bit-twiddling per access.  An aliased floatarray view over
   the same storage serves 8-aligned double accesses unboxed.  Any given
   address is only ever accessed at one type/alignment (globals are
   accessed through their declared type), so the two views never need
   reconciling: aligned doubles live in [dbl], everything else in
   [bytes]. *)

type t = { bytes : Bytes.t; dbl : floatarray }

let create n =
  { bytes = Bytes.make n '\000'; dbl = Float.Array.make ((n + 7) / 8) 0. }

let size t = Bytes.length t.bytes

(* unboxed accessors — the typed fast paths in Interp call these directly
   so no Value.t is constructed per memory access *)

let load_float t ~ty ~addr =
  match ty with
  | Minic.Ast.Tdouble when addr land 7 = 0 -> Float.Array.get t.dbl (addr lsr 3)
  | Minic.Ast.Tdouble -> Int64.float_of_bits (Bytes.get_int64_le t.bytes addr)
  | Minic.Ast.Tfloat -> Int32.float_of_bits (Bytes.get_int32_le t.bytes addr)
  | _ -> invalid_arg "Mem.load_float: non-float type"

let store_float t ~ty ~addr f =
  match ty with
  | Minic.Ast.Tdouble when addr land 7 = 0 ->
      Float.Array.set t.dbl (addr lsr 3) f
  | Minic.Ast.Tdouble ->
      Bytes.set_int64_le t.bytes addr (Int64.bits_of_float f)
  | Minic.Ast.Tfloat ->
      Bytes.set_int32_le t.bytes addr (Int32.bits_of_float f)
  | _ -> invalid_arg "Mem.store_float: non-float type"

let load_int t ~ty ~addr =
  match ty with
  | Minic.Ast.Tchar -> Char.code (Bytes.get t.bytes addr)
  | Minic.Ast.Tint -> Int32.to_int (Bytes.get_int32_le t.bytes addr)
  | Minic.Ast.Tlong -> Int64.to_int (Bytes.get_int64_le t.bytes addr)
  | _ -> invalid_arg "Mem.load_int: non-integer type"

let store_int t ~ty ~addr n =
  match ty with
  | Minic.Ast.Tchar -> Bytes.set t.bytes addr (Char.chr (n land 0xff))
  | Minic.Ast.Tint -> Bytes.set_int32_le t.bytes addr (Int32.of_int n)
  | Minic.Ast.Tlong -> Bytes.set_int64_le t.bytes addr (Int64.of_int n)
  | _ -> invalid_arg "Mem.store_int: non-integer type"

let load t ~ty ~addr =
  match ty with
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble ->
      Value.V_float (load_float t ~ty ~addr)
  | Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong ->
      Value.V_int (load_int t ~ty ~addr)
  | Minic.Ast.Tvoid | Minic.Ast.Tstruct _ | Minic.Ast.Tarray _ ->
      invalid_arg "Mem.load: non-scalar type"

let store t ~ty ~addr v =
  match ty with
  | Minic.Ast.Tfloat | Minic.Ast.Tdouble ->
      store_float t ~ty ~addr (Value.to_float v)
  | Minic.Ast.Tchar | Minic.Ast.Tint | Minic.Ast.Tlong ->
      store_int t ~ty ~addr (Value.to_int v)
  | Minic.Ast.Tvoid | Minic.Ast.Tstruct _ | Minic.Ast.Tarray _ ->
      invalid_arg "Mem.store: non-scalar type"

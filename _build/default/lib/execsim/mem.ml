type t = Bytes.t

let create n = Bytes.make n '\000'
let size = Bytes.length

let load t ~ty ~addr =
  match ty with
  | Minic.Ast.Tchar -> Value.V_int (Char.code (Bytes.get t addr))
  | Minic.Ast.Tint -> Value.V_int (Int32.to_int (Bytes.get_int32_le t addr))
  | Minic.Ast.Tlong -> Value.V_int (Int64.to_int (Bytes.get_int64_le t addr))
  | Minic.Ast.Tfloat ->
      Value.V_float (Int32.float_of_bits (Bytes.get_int32_le t addr))
  | Minic.Ast.Tdouble ->
      Value.V_float (Int64.float_of_bits (Bytes.get_int64_le t addr))
  | Minic.Ast.Tvoid | Minic.Ast.Tstruct _ | Minic.Ast.Tarray _ ->
      invalid_arg "Mem.load: non-scalar type"

let store t ~ty ~addr v =
  match ty with
  | Minic.Ast.Tchar ->
      Bytes.set t addr (Char.chr (Value.to_int v land 0xff))
  | Minic.Ast.Tint ->
      Bytes.set_int32_le t addr (Int32.of_int (Value.to_int v))
  | Minic.Ast.Tlong ->
      Bytes.set_int64_le t addr (Int64.of_int (Value.to_int v))
  | Minic.Ast.Tfloat ->
      Bytes.set_int32_le t addr (Int32.bits_of_float (Value.to_float v))
  | Minic.Ast.Tdouble ->
      Bytes.set_int64_le t addr (Int64.bits_of_float (Value.to_float v))
  | Minic.Ast.Tvoid | Minic.Ast.Tstruct _ | Minic.Ast.Tarray _ ->
      invalid_arg "Mem.store: non-scalar type"

(** Runtime values of the mini-C interpreter, with C-like conversions. *)

type t = V_int of int | V_float of float

val zero_of : Minic.Ast.ctype -> t
val is_float_type : Minic.Ast.ctype -> bool

val to_int : t -> int
(** Floats truncate toward zero, as a C cast. *)

val to_float : t -> float
val truthy : t -> bool
val of_bool : bool -> t

val binop : Minic.Ast.binop -> t -> t -> t
(** C semantics: arithmetic promotes to float when either side is float;
    [/] and [%] on ints truncate; comparisons and logic yield [V_int 0/1].
    @raise Division_by_zero. *)

val unop : Minic.Ast.unop -> t -> t
val builtin : string -> t list -> t
(** Math builtins (sin, cos, ...) over doubles.
    @raise Invalid_argument for an unknown builtin or bad arity. *)

val convert : Minic.Ast.ctype -> t -> t
(** Coerce a value for storage into a location of the given scalar type. *)

val pp : Format.formatter -> t -> unit

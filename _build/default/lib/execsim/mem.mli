(** Flat byte-addressed memory for the interpreter, little-endian, with
    typed scalar accessors matching {!Minic.Ctypes} sizes. *)

type t

val create : int -> t
(** Zero-initialized, like C statics. *)

val size : t -> int

val load : t -> ty:Minic.Ast.ctype -> addr:int -> Value.t
(** @raise Invalid_argument for non-scalar types or out-of-bounds access. *)

val store : t -> ty:Minic.Ast.ctype -> addr:int -> Value.t -> unit

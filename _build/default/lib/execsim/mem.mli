(** Flat byte-addressed memory for the interpreter, little-endian, with
    typed scalar accessors matching {!Minic.Ctypes} sizes. *)

type t

val create : int -> t
(** Zero-initialized, like C statics. *)

val size : t -> int

val load : t -> ty:Minic.Ast.ctype -> addr:int -> Value.t
(** @raise Invalid_argument for non-scalar types or out-of-bounds access. *)

val store : t -> ty:Minic.Ast.ctype -> addr:int -> Value.t -> unit

(** Unboxed accessors for the interpreter's typed fast paths: no
    {!Value.t} is constructed per access.  [load_float]/[store_float]
    accept only [Tfloat]/[Tdouble]; [load_int]/[store_int] only
    [Tchar]/[Tint]/[Tlong] ([Tchar] stores mask to one byte).
    @raise Invalid_argument on a type outside the accessor's class. *)

val load_float : t -> ty:Minic.Ast.ctype -> addr:int -> float
val store_float : t -> ty:Minic.Ast.ctype -> addr:int -> float -> unit
val load_int : t -> ty:Minic.Ast.ctype -> addr:int -> int
val store_int : t -> ty:Minic.Ast.ctype -> addr:int -> int -> unit

lib/execsim/interp.ml: Archspec Array Costmodel Float Format Hashtbl List Loopir Mem Minic Ompsched Option Value

lib/execsim/interp.ml: Archspec Array Costmodel Format Hashtbl List Loopir Mem Minic Ompsched Option Value

lib/execsim/mem.mli: Minic Value

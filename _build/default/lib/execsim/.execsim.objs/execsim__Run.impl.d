lib/execsim/run.ml: Archspec Array Cachesim Float Format Interp Kernels Ompsched Option

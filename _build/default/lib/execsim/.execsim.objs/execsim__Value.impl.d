lib/execsim/value.ml: Float Format Minic

lib/execsim/value.mli: Format Minic

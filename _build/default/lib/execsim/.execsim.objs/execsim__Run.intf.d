lib/execsim/run.mli: Archspec Cachesim Format Kernels

lib/execsim/interp.mli: Loopir Mem Minic Value

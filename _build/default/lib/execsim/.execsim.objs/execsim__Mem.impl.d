lib/execsim/mem.ml: Bytes Char Int32 Int64 Minic Value

lib/execsim/mem.ml: Bytes Char Float Int32 Int64 Minic Value

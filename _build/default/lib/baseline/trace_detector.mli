(** A runtime false-sharing detector in the style of the binary-
    instrumentation tools the paper cites as related work (§V: memory
    tracing fed to a cache simulator): execute the program, trace every
    memory reference, classify invalidation misses at word granularity
    into true and false sharing.

    This is the comparator for the paper's key qualitative claim: the
    compile-time model reaches the same conclusions {e without executing
    the program} (and, with the §III-E predictor, after evaluating only a
    few chunk runs), while the runtime detector must trace every access
    of a full run. *)

type report = {
  threads : int;
  chunk : int;
  accesses_traced : int;  (** instrumentation work performed *)
  fs_misses : int;  (** invalidation misses on untouched words *)
  true_sharing_misses : int;
  invalidations : int;
  wall_seconds_simulated : float;
}

val detect :
  ?arch:Archspec.Arch.t ->
  ?interleave_window:int ->
  ?chunk:int ->
  threads:int ->
  Kernels.Kernel.t ->
  report
(** Run the kernel under the tracer (init untimed, kernel traced). *)

val pp : Format.formatter -> report -> unit

type report = {
  threads : int;
  chunk : int;
  accesses_traced : int;
  fs_misses : int;
  true_sharing_misses : int;
  invalidations : int;
  wall_seconds_simulated : float;
}

let detect ?arch ?interleave_window ?chunk ~threads (kernel : Kernels.Kernel.t)
    =
  let chunk =
    match chunk with Some c -> c | None -> kernel.Kernels.Kernel.fs_chunk
  in
  let m = Execsim.Run.measure ?arch ?interleave_window ~chunk ~threads kernel in
  let st = m.Execsim.Run.stats in
  {
    threads;
    chunk;
    accesses_traced = Cachesim.Stats.accesses st;
    fs_misses = st.Cachesim.Stats.coherence_false;
    true_sharing_misses = st.Cachesim.Stats.coherence_true;
    invalidations = st.Cachesim.Stats.invalidations_sent;
    wall_seconds_simulated = m.Execsim.Run.seconds;
  }

let pp ppf r =
  Format.fprintf ppf
    "runtime detector: %d threads, chunk %d: %d accesses traced, %d FS \
     misses, %d true-sharing misses, %d invalidations"
    r.threads r.chunk r.accesses_traced r.fs_misses r.true_sharing_misses
    r.invalidations

(** Compile-time model vs runtime detector, head to head: do both methods
    rank chunk sizes the same way, and what does each cost? *)

type row = {
  chunk : int;
  model_fs_cases : int;  (** compile-time model (full evaluation) *)
  predicted_fs_cases : int;  (** §III-E predictor, few chunk runs *)
  runtime_fs_misses : int;  (** trace-based detector (must execute) *)
  model_iterations : int;  (** model work: iterations evaluated *)
  predictor_iterations : int;
  runtime_accesses : int;  (** detector work: accesses traced *)
}

type t = {
  kernel : string;
  threads : int;
  rows : row list;
  rank_agreement : float;
      (** Spearman rank correlation between the model's and the detector's
          chunk-size ordering; 1.0 = identical ranking *)
}

val run :
  ?arch:Archspec.Arch.t ->
  ?chunks:int list ->
  threads:int ->
  Kernels.Kernel.t ->
  t
(** Default chunk list: 1, 2, 4, 8, 16, 32. *)

val spearman : float list -> float list -> float
(** Rank correlation (exposed for tests); returns 1.0 for lists shorter
    than 2. *)

val pp : Format.formatter -> t -> unit

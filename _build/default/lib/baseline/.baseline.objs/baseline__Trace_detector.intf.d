lib/baseline/trace_detector.mli: Archspec Format Kernels

lib/baseline/trace_detector.ml: Cachesim Execsim Format Kernels

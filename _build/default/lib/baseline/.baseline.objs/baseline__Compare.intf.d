lib/baseline/compare.mli: Archspec Format Kernels

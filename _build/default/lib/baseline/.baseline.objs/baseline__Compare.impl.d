lib/baseline/compare.ml: Archspec Array Format Fsmodel Kernels List Loopir Trace_detector

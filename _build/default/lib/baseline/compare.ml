type row = {
  chunk : int;
  model_fs_cases : int;
  predicted_fs_cases : int;
  runtime_fs_misses : int;
  model_iterations : int;
  predictor_iterations : int;
  runtime_accesses : int;
}

type t = {
  kernel : string;
  threads : int;
  rows : row list;
  rank_agreement : float;
}

let ranks xs =
  (* average ranks for ties *)
  let idx = List.mapi (fun i x -> (x, i)) xs in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) idx in
  let n = List.length xs in
  let rank_of = Array.make n 0. in
  let arr = Array.of_list sorted in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && fst arr.(!j + 1) = fst arr.(!i) do incr j done;
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      rank_of.(snd arr.(k)) <- avg
    done;
    i := !j + 1
  done;
  Array.to_list rank_of

let spearman xs ys =
  let n = List.length xs in
  if n < 2 || n <> List.length ys then 1.0
  else begin
    let rx = ranks xs and ry = ranks ys in
    let mean l = List.fold_left ( +. ) 0. l /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let num =
      List.fold_left2 (fun acc a b -> acc +. ((a -. mx) *. (b -. my))) 0. rx ry
    in
    let sq l m =
      List.fold_left (fun acc a -> acc +. ((a -. m) *. (a -. m))) 0. l
    in
    let den = sqrt (sq rx mx *. sq ry my) in
    if den = 0. then 1.0 else num /. den
  end

let run ?(arch = Archspec.Arch.paper_machine) ?(chunks = [ 1; 2; 4; 8; 16; 32 ])
    ~threads (kernel : Kernels.Kernel.t) =
  let checked = Kernels.Kernel.parse kernel in
  let nest =
    Loopir.Lower.lower checked ~func:kernel.Kernels.Kernel.func
      ~params:[ ("num_threads", threads) ]
  in
  let rows =
    List.map
      (fun chunk ->
        let cfg =
          { (Fsmodel.Model.default_config ~arch ~threads ()) with
            Fsmodel.Model.chunk = Some chunk }
        in
        let full = Fsmodel.Model.run cfg ~nest ~checked in
        let pred =
          Fsmodel.Predict.predict ~runs:kernel.Kernels.Kernel.pred_runs cfg
            ~nest ~checked
        in
        let rt = Trace_detector.detect ~arch ~chunk ~threads kernel in
        {
          chunk;
          model_fs_cases = full.Fsmodel.Model.fs_cases;
          predicted_fs_cases = pred.Fsmodel.Predict.predicted_fs;
          runtime_fs_misses = rt.Trace_detector.fs_misses;
          model_iterations = full.Fsmodel.Model.iterations_evaluated;
          predictor_iterations = pred.Fsmodel.Predict.iterations_evaluated;
          runtime_accesses = rt.Trace_detector.accesses_traced;
        })
      chunks
  in
  let rank_agreement =
    spearman
      (List.map (fun r -> float_of_int r.model_fs_cases) rows)
      (List.map (fun r -> float_of_int r.runtime_fs_misses) rows)
  in
  { kernel = kernel.Kernels.Kernel.name; threads; rows; rank_agreement }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s on %d threads (rank agreement %.2f)@,\
     chunk  model-FS  predicted-FS  runtime-FS  model-iters  pred-iters  traced@,"
    t.kernel t.threads t.rank_agreement;
  List.iter
    (fun r ->
      Format.fprintf ppf "%5d  %8d  %12d  %10d  %11d  %10d  %6d@," r.chunk
        r.model_fs_cases r.predicted_fs_cases r.runtime_fs_misses
        r.model_iterations r.predictor_iterations r.runtime_accesses)
    t.rows;
  Format.fprintf ppf "@]"

lib/core/model.mli: Archspec Loopir Minic

lib/core/predict.ml: Costmodel Float Linreg List Loopir Model Ompsched

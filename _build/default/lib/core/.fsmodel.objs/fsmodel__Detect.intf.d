lib/core/detect.mli: Ownership Thread_cache_state

lib/core/advisor.ml: Archspec Format Hashtbl List Loopir Model Option Predict

lib/core/advisor.ml: Archspec Format Hashtbl List Loopir Model Option Par_sweep Predict

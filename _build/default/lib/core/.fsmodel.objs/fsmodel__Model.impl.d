lib/core/model.ml: Archspec Array Detect Fs_counter Hashtbl List Loopir Ompsched Option Ownership Thread_cache_state

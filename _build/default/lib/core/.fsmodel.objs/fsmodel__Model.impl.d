lib/core/model.ml: Archspec Array Fs_counter List Loopir Ompsched Option Ownership

lib/core/ownership.ml: Array List Loopir Printf

lib/core/advisor.mli: Archspec Format Minic

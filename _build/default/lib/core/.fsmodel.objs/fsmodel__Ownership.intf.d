lib/core/ownership.mli: Loopir

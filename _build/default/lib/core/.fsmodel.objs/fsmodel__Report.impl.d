lib/core/report.ml: Buffer List Option Printf String

lib/core/thread_cache_state.ml: Archspec Cachesim

lib/core/overhead_percent.ml: Archspec Costmodel Format List Loopir Minic Model Predict

lib/core/fs_counter.ml: Array Hashtbl List Ownership Thread_cache_state

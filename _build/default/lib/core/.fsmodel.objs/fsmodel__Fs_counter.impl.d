lib/core/fs_counter.ml: Array Cachesim List Ownership Thread_cache_state

lib/core/eliminate.ml: Advisor Archspec Format Hashtbl List Minic Option

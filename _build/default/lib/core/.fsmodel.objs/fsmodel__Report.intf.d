lib/core/report.mli:

lib/core/fs_counter.mli: Ownership Thread_cache_state

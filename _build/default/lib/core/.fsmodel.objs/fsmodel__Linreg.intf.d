lib/core/linreg.mli: Format

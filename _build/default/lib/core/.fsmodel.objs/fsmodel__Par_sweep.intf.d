lib/core/par_sweep.mli:

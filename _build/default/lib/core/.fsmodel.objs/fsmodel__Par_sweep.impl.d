lib/core/par_sweep.ml: Array Atomic Domain List

lib/core/linreg.ml: Format List

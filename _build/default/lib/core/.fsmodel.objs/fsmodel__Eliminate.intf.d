lib/core/eliminate.mli: Advisor Archspec Format Minic

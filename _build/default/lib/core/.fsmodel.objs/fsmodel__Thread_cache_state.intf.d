lib/core/thread_cache_state.mli: Archspec

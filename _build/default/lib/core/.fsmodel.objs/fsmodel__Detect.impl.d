lib/core/detect.ml: Array List Ownership Thread_cache_state

lib/core/predict.mli: Linreg Loopir Minic Model

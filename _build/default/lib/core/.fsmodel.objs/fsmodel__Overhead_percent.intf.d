lib/core/overhead_percent.mli: Archspec Costmodel Format Minic

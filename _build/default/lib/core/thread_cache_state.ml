type t = bool Cachesim.Lru_stack.t

let create ~capacity : t = Cachesim.Lru_stack.create ~capacity

let of_cache geom =
  create ~capacity:(Archspec.Cache_geom.lines geom)

let insert (t : t) ~line ~written =
  let written =
    written
    || match Cachesim.Lru_stack.find t line with Some w -> w | None -> false
  in
  Cachesim.Lru_stack.access t line written

let holds (t : t) line = Cachesim.Lru_stack.mem t line

let holds_modified (t : t) line =
  match Cachesim.Lru_stack.find t line with Some w -> w | None -> false

let invalidate (t : t) line = Cachesim.Lru_stack.remove t line <> None
let size (t : t) = Cachesim.Lru_stack.size t
let clear (t : t) = Cachesim.Lru_stack.clear t

type line = { a : float; b : float }

let fit_paper pts =
  if pts = [] then invalid_arg "Linreg.fit_paper: no points";
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. pts in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. pts in
  if sxx = 0. then invalid_arg "Linreg.fit_paper: all x are zero";
  let a = sxy /. sxx in
  let n = float_of_int (List.length pts) in
  let b = List.fold_left (fun acc (x, y) -> acc +. (y -. (a *. x))) 0. pts /. n in
  { a; b }

let fit_ols pts =
  if pts = [] then invalid_arg "Linreg.fit_ols: no points";
  let n = float_of_int (List.length pts) in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. pts in
  let mx = sx /. n and my = sy /. n in
  let sxx =
    List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) *. (x -. mx))) 0. pts
  in
  if sxx = 0. then fit_paper pts
  else begin
    let sxy =
      List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. pts
    in
    let a = sxy /. sxx in
    { a; b = my -. (a *. mx) }
  end

let predict { a; b } x = (a *. x) +. b

let residual_rms line pts =
  match pts with
  | [] -> 0.
  | _ ->
      let n = float_of_int (List.length pts) in
      let ss =
        List.fold_left
          (fun acc (x, y) ->
            let e = y -. predict line x in
            acc +. (e *. e))
          0. pts
      in
      sqrt (ss /. n)

let pp ppf { a; b } = Format.fprintf ppf "y = %.4f x %+.4f" a b

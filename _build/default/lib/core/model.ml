type stack_policy = Level_l1 | Level_l2 | Lines of int | Unbounded

type config = {
  arch : Archspec.Arch.t;
  threads : int;
  chunk : int option;
  params : (string * int) list;
  stack : stack_policy;
  invalidate_on_write : bool;
}

let default_config ?(arch = Archspec.Arch.paper_machine) ~threads () =
  {
    arch;
    threads;
    chunk = None;
    params = [ ("num_threads", threads) ];
    stack = Level_l1;
    invalidate_on_write = false;
  }

type run_sample = { chunk_run : int; cumulative_fs : int }

type result = {
  fs_cases : int;
  thread_steps : int;
  iterations_evaluated : int;
  chunk_runs : int;
  samples : run_sample list;
  truncated : bool;
}

exception Stop

type state = {
  mutable fs : int;
  mutable steps : int;
  mutable iters : int;
  mutable runs : int;
  mutable samples : run_sample list;
  mutable truncated : bool;
}

let capacity_of cfg =
  match cfg.stack with
  | Level_l1 -> Archspec.Cache_geom.lines cfg.arch.Archspec.Arch.l1
  | Level_l2 -> Archspec.Cache_geom.lines cfg.arch.Archspec.Arch.l2
  | Lines n -> n
  | Unbounded -> max_int

let run ?max_chunk_runs ?(record_samples = false) cfg
    ~(nest : Loopir.Loop_nest.t) ~checked =
  if cfg.threads < 1 then invalid_arg "Model.run: threads < 1";
  if cfg.threads > 62 then
    invalid_arg "Model.run: more than 62 threads (bitmask fast path)";
  (match Loopir.Loop_nest.schedule_kind nest with
  | `Static -> ()
  | `Dynamic | `Guided ->
      invalid_arg
        "Model.run: the FS cost model covers schedule(static) only (the \
         paper's round-robin assumption, §III); dynamic and guided \
         assignments are execution-dependent");
  let arch = cfg.arch in
  let line_bytes = Archspec.Arch.line_bytes arch in
  let layout = Loopir.Layout.make ~line_bytes checked in
  let loops = Array.of_list nest.Loopir.Loop_nest.loops in
  let nloops = Array.length loops in
  let d = nest.Loopir.Loop_nest.parallel_depth in
  let var_slots =
    List.map (fun (l : Loopir.Loop_nest.loop) -> l.Loopir.Loop_nest.var)
      nest.Loopir.Loop_nest.loops
  in
  let own =
    Ownership.compile ~layout ~line_bytes ~params:cfg.params ~var_slots nest
  in
  let chunk_spec =
    match cfg.chunk with
    | Some c -> Some c
    | None -> Loopir.Loop_nest.chunk_spec nest
  in
  let counter =
    Fs_counter.create ~threads:cfg.threads ~capacity:(capacity_of cfg)
  in
  let process_entry t { Ownership.line; written } =
    let fs = Fs_counter.process counter ~me:t ~line ~written in
    if cfg.invalidate_on_write && written then
      Fs_counter.invalidate_others counter ~me:t ~line;
    fs
  in
  let idx = Array.make nloops 0 in
  let lookup v =
    match List.assoc_opt v cfg.params with
    | Some k -> Some k
    | None ->
        (* outer induction variables currently pinned in [idx] *)
        let rec go i =
          if i >= nloops then None
          else if loops.(i).Loopir.Loop_nest.var = v then Some idx.(i)
          else go (i + 1)
        in
        go 0
  in
  let st =
    { fs = 0; steps = 0; iters = 0; runs = 0; samples = []; truncated = false }
  in
  let run_limit = Option.value ~default:max_int max_chunk_runs in
  let complete_chunk_run () =
    st.runs <- st.runs + 1;
    if record_samples then
      st.samples <- { chunk_run = st.runs; cumulative_fs = st.fs } :: st.samples;
    if st.runs >= run_limit then begin
      st.truncated <- true;
      raise Stop
    end
  in
  (* Evaluate the parallel region for the outer-variable values currently in
     [idx]. *)
  let eval_region () =
    let ploop = loops.(d) in
    let par_lower = Loopir.Expr_eval.eval lookup ploop.Loopir.Loop_nest.lower in
    let par_trip = Loopir.Loop_nest.trip_count ploop ~env:lookup in
    if par_trip > 0 then begin
      (* inner loop geometry, parallel variable pinned at its lower bound *)
      idx.(d) <- par_lower;
      let inner = Array.sub loops (d + 1) (nloops - d - 1) in
      let inner_lowers =
        Array.map
          (fun (l : Loopir.Loop_nest.loop) ->
            Loopir.Expr_eval.eval lookup l.Loopir.Loop_nest.lower)
          inner
      in
      let inner_trips =
        Array.map
          (fun (l : Loopir.Loop_nest.loop) ->
            Loopir.Loop_nest.trip_count l ~env:lookup)
          inner
      in
      let inner_per_par = Array.fold_left ( * ) 1 inner_trips in
      if inner_per_par > 0 then begin
        let chunk =
          match chunk_spec with
          | Some c -> c
          | None ->
              (* schedule(static) without a chunk: contiguous blocks *)
              Ompsched.Schedule.block_chunk ~threads:cfg.threads
                ~total:par_trip
        in
        let sched =
          Ompsched.Schedule.make ~threads:cfg.threads ~chunk ~total:par_trip
        in
        let max_par_steps = Ompsched.Schedule.max_steps_per_thread sched in
        let max_steps = max_par_steps * inner_per_par in
        let run_span = chunk * inner_per_par in
        for s = 0 to max_steps - 1 do
          let k_par = s / inner_per_par in
          let k_in = s mod inner_per_par in
          for t = 0 to cfg.threads - 1 do
            match Ompsched.Schedule.nth_iter_of_thread sched ~tid:t k_par with
            | None -> ()
            | Some q ->
                idx.(d) <-
                  par_lower + (q * ploop.Loopir.Loop_nest.step);
                (* mixed-radix decomposition of the inner iteration *)
                let rem = ref k_in in
                for j = Array.length inner - 1 downto 0 do
                  let trip = inner_trips.(j) in
                  let v = !rem mod trip in
                  rem := !rem / trip;
                  idx.(d + 1 + j) <-
                    inner_lowers.(j) + (v * inner.(j).Loopir.Loop_nest.step)
                done;
                let entries = Ownership.lines own idx in
                List.iter
                  (fun e -> st.fs <- st.fs + process_entry t e)
                  entries;
                st.iters <- st.iters + 1
          done;
          st.steps <- st.steps + 1;
          if (s + 1) mod run_span = 0 then complete_chunk_run ()
        done;
        (* a trailing partial chunk run still counts as a run *)
        if max_steps mod run_span <> 0 then complete_chunk_run ()
      end
    end
  in
  (* enumerate the sequential outer loops *)
  let rec outer level =
    if level = d then eval_region ()
    else begin
      let loop = loops.(level) in
      let lo = Loopir.Expr_eval.eval lookup loop.Loopir.Loop_nest.lower in
      let hi = Loopir.Expr_eval.eval lookup loop.Loopir.Loop_nest.upper_excl in
      let v = ref lo in
      while !v < hi do
        idx.(level) <- !v;
        outer (level + 1);
        v := !v + loop.Loopir.Loop_nest.step
      done
    end
  in
  (try outer 0 with Stop -> ());
  {
    fs_cases = st.fs;
    thread_steps = st.steps;
    iterations_evaluated = st.iters;
    chunk_runs = st.runs;
    samples = List.rev st.samples;
    truncated = st.truncated;
  }

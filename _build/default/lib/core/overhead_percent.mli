(** End-to-end FS-overhead estimation — the right-hand side of paper Eq. 5:
    compare the FS-case counts of an FS-prone chunk size against an
    optimized chunk size, normalize through the Eq. 1 cost model, and
    report the percentage of loop execution time lost to false sharing. *)

type mode =
  | Full  (** evaluate every iteration (the paper's FS cost model) *)
  | Predicted of int
      (** evaluate only this many chunk runs and extrapolate (§III-E) *)

type analysis = {
  threads : int;
  fs_chunk : int;
  nfs_chunk : int;
  n_fs : int;  (** FS cases with the FS-prone chunk *)
  n_nfs : int;  (** FS cases with the optimized chunk *)
  percent : float;  (** modeled FS share of execution time, in % *)
  breakdown : Costmodel.Total_cost.breakdown;
      (** Eq. 1 breakdown of the FS-chunk loop *)
}

val analyze :
  ?mode:mode ->
  ?arch:Archspec.Arch.t ->
  ?fs_cost_factor:float ->
  ?contention:bool ->
  threads:int ->
  fs_chunk:int ->
  nfs_chunk:int ->
  func:string ->
  Minic.Typecheck.checked ->
  analysis
(** Lowers [func] with [num_threads] bound to [threads], runs the model for
    both chunk sizes, and converts
    [(N_fs − N_nfs) · coherence_latency / threads] cycles into a share of
    the nest's total modeled time. *)

val pp : Format.formatter -> analysis -> unit

let fs_cases_for_insert ~states ~me ~line =
  let n = Array.length states in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if j <> me && Thread_cache_state.holds_modified states.(j) line then
      incr count
  done;
  !count

let fs_cases_for_iteration ~states ~me entries =
  List.fold_left
    (fun acc { Ownership.line; written } ->
      let fs = fs_cases_for_insert ~states ~me ~line in
      ignore (Thread_cache_state.insert states.(me) ~line ~written);
      acc + fs)
    0 entries

type t = {
  states : Thread_cache_state.t array;
  modified : (int, int) Hashtbl.t;  (* line -> bitmask of writer-holders *)
}

let create ~threads ~capacity =
  if threads < 1 || threads > 62 then
    invalid_arg "Fs_counter.create: threads must be in 1..62";
  {
    states = Array.init threads (fun _ -> Thread_cache_state.create ~capacity);
    modified = Hashtbl.create 4096;
  }

let mask_of t line =
  match Hashtbl.find_opt t.modified line with Some m -> m | None -> 0

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

let clear_bit t line tid =
  match Hashtbl.find_opt t.modified line with
  | Some m ->
      let m' = m land lnot (1 lsl tid) in
      if m' = 0 then Hashtbl.remove t.modified line
      else Hashtbl.replace t.modified line m'
  | None -> ()

let process t ~me ~line ~written =
  let fs = popcount (mask_of t line land lnot (1 lsl me)) in
  let prior_written = Thread_cache_state.holds_modified t.states.(me) line in
  (match Thread_cache_state.insert t.states.(me) ~line ~written with
  | Some (evicted, _) -> clear_bit t evicted me
  | None -> ());
  if written || prior_written then
    Hashtbl.replace t.modified line (mask_of t line lor (1 lsl me));
  fs

let process_entries t ~me entries =
  List.fold_left
    (fun acc { Ownership.line; written } ->
      acc + process t ~me ~line ~written)
    0 entries

let invalidate_others t ~me ~line =
  Array.iteri
    (fun j s ->
      if j <> me then
        if Thread_cache_state.invalidate s line then clear_bit t line j)
    t.states

let state t i = t.states.(i)
let threads t = Array.length t.states

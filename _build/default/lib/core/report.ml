let group_digits s =
  let n = String.length s in
  let buf = Buffer.create (n + (n / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (n - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let kcount n =
  if abs n < 1000 then string_of_int n
  else group_digits (string_of_int (n / 1000)) ^ "K"

let pct f = Printf.sprintf "%.1f%%" f
let seconds f = Printf.sprintf "%.4f" f

let table ~header rows =
  let all = header :: rows in
  let cols =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    String.sub s 0 !n
  in
  let render_row row =
    rtrim
      (String.concat "  "
         (List.mapi
            (fun c w ->
              let cell = Option.value ~default:"" (List.nth_opt row c) in
              cell ^ String.make (max 0 (w - String.length cell)) ' ')
            widths))
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render_row header :: sep :: List.map render_row rows)

(** Step 2 of the paper's method (§III-B): the cache-line ownership list —
    for given values of the loop indices, the set of cache lines a thread
    reads/writes in that iteration.

    References are compiled once (base addresses resolved through
    {!Loopir.Layout}, parameters folded) so that per-iteration evaluation is
    a handful of integer multiply-adds.  Lines touched more than once in an
    iteration are merged, a write dominating reads. *)

type entry = { line : int; written : bool }

type t

val compile :
  layout:Loopir.Layout.t ->
  line_bytes:int ->
  params:(string * int) list ->
  var_slots:string list ->
  Loopir.Loop_nest.t ->
  t
(** [var_slots] fixes the order in which {!lines} expects index values
    (normally the nest's loop variables, outermost first).
    @raise Invalid_argument if a reference uses a variable outside
    [var_slots] and [params]. *)

val lines : t -> int array -> entry list
(** Ownership list for the iteration whose index values are given in
    [var_slots] order.  The result is freshly allocated, deduplicated,
    in first-touch order. *)

val ref_count : t -> int

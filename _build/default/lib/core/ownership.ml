type entry = { line : int; written : bool }

type compiled_ref = {
  const_off : int;  (* base address + constant offset *)
  terms : (int * int) array;  (* (slot, coefficient) pairs *)
  size : int;
  write : bool;
}

type t = { refs : compiled_ref array; line_bytes : int }

let compile ~layout ~line_bytes ~params ~var_slots (nest : Loopir.Loop_nest.t)
    =
  let slot_of v =
    let rec go i = function
      | [] -> None
      | x :: rest -> if x = v then Some i else go (i + 1) rest
    in
    go 0 var_slots
  in
  let compile_ref (r : Loopir.Array_ref.t) =
    let base = Loopir.Layout.addr_of layout r.Loopir.Array_ref.base in
    let off = r.Loopir.Array_ref.offset in
    (* fold parameters into the constant part *)
    let folded =
      Loopir.Affine.subst
        (fun v ->
          match List.assoc_opt v params with
          | Some k -> Some (Loopir.Affine.const k)
          | None -> None)
        off
    in
    let terms =
      List.map
        (fun v ->
          match slot_of v with
          | Some slot -> (slot, Loopir.Affine.coeff folded v)
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Ownership.compile: variable %s of %s is neither a loop \
                    variable nor a parameter"
                   v r.Loopir.Array_ref.repr))
        (Loopir.Affine.vars folded)
    in
    {
      const_off = base + Loopir.Affine.const_part folded;
      terms = Array.of_list terms;
      size = r.Loopir.Array_ref.size_bytes;
      write = Loopir.Array_ref.is_write r;
    }
  in
  {
    refs = Array.of_list (List.map compile_ref nest.Loopir.Loop_nest.refs);
    line_bytes;
  }

let lines t idx =
  let acc = ref [] in
  (* first-touch order with write-domination; reference lists are short so a
     linear merge beats hashing *)
  let rec merge line written = function
    | [] -> acc := { line; written } :: !acc
    | e :: _ when e.line = line ->
        if written && not e.written then
          acc :=
            List.map
              (fun x -> if x.line = line then { x with written = true } else x)
              !acc
    | _ :: rest -> merge line written rest
  in
  Array.iter
    (fun r ->
      let addr = ref r.const_off in
      Array.iter
        (fun (slot, coeff) -> addr := !addr + (coeff * idx.(slot)))
        r.terms;
      let first = !addr / t.line_bytes in
      let last = (!addr + r.size - 1) / t.line_bytes in
      for line = first to last do
        merge line r.write !acc
      done)
    t.refs;
  List.rev !acc

let ref_count t = Array.length t.refs

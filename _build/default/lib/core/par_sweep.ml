(* Independent model/predictor evaluations (one per configuration) have no
   shared mutable state — each Model.run builds its own counter and cache
   states — so a sweep parallelizes trivially across OCaml domains.  Work
   is dealt by an atomic cursor; results are keyed by input index, so the
   output order (and content) is identical however many domains run. *)

let recommended_domains () =
  max 1 (min 8 (Domain.recommended_domain_count ()))

let map ?domains f xs =
  let items = Array.of_list xs in
  let len = Array.length items in
  let n =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Par_sweep.map: domains < 1";
        d
    | None -> recommended_domains ()
  in
  if n <= 1 || len <= 1 then List.map f xs
  else begin
    let results = Array.make len None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < len then begin
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          go ()
        end
      in
      go ()
    in
    let doms =
      Array.init (min n len - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join doms;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)
  end

let mapi ?domains f xs =
  map ?domains (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

type fit_method = Paper | Ols

type prediction = {
  predicted_fs : int;
  line : Linreg.line;
  runs_evaluated : int;
  x_max : int;
  iterations_evaluated : int;
  full_iterations : int;
  samples : Model.run_sample list;
}

let env_of (cfg : Model.config) v = List.assoc_opt v cfg.Model.params

let x_max (cfg : Model.config) ~(nest : Loopir.Loop_nest.t) =
  let env = env_of cfg in
  let trips = Costmodel.Cache_model.trips_of_nest ~env nest in
  let d = nest.Loopir.Loop_nest.parallel_depth in
  let regions =
    List.fold_left ( * ) 1 (List.filteri (fun i _ -> i < d) trips |> List.map snd)
  in
  let par_trip = snd (List.nth trips d) in
  let chunk =
    match cfg.Model.chunk with
    | Some c -> c
    | None -> (
        match Loopir.Loop_nest.chunk_spec nest with
        | Some c -> c
        | None ->
            Ompsched.Schedule.block_chunk ~threads:cfg.Model.threads
              ~total:par_trip)
  in
  let per_run = cfg.Model.threads * chunk in
  regions * ((par_trip + per_run - 1) / per_run)

let predict ?(runs = 20) ?(fit = Paper) (cfg : Model.config) ~nest ~checked =
  let r = Model.run ~max_chunk_runs:runs ~record_samples:true cfg ~nest ~checked in
  let pts =
    List.map
      (fun { Model.chunk_run; cumulative_fs } ->
        (float_of_int chunk_run, float_of_int cumulative_fs))
      r.Model.samples
  in
  let line =
    match fit with
    | Paper -> Linreg.fit_paper pts
    | Ols -> Linreg.fit_ols pts
  in
  let x_max = x_max cfg ~nest in
  let predicted =
    int_of_float (Float.round (Linreg.predict line (float_of_int x_max)))
  in
  let env = env_of cfg in
  let full_iterations = Loopir.Loop_nest.total_iterations nest ~env in
  {
    predicted_fs = max 0 predicted;
    line;
    runs_evaluated = r.Model.chunk_runs;
    x_max;
    iterations_evaluated = r.Model.iterations_evaluated;
    full_iterations;
    samples = r.Model.samples;
  }

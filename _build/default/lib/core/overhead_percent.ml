type mode = Full | Predicted of int

type analysis = {
  threads : int;
  fs_chunk : int;
  nfs_chunk : int;
  n_fs : int;
  n_nfs : int;
  percent : float;
  breakdown : Costmodel.Total_cost.breakdown;
}

let count ~mode cfg ~nest ~checked =
  match mode with
  | Full -> (Model.run cfg ~nest ~checked).Model.fs_cases
  | Predicted runs ->
      (Predict.predict ~runs cfg ~nest ~checked).Predict.predicted_fs

let analyze ?(mode = Full) ?(arch = Archspec.Arch.paper_machine)
    ?(fs_cost_factor = Costmodel.Total_cost.default_fs_cost_factor)
    ?(contention = false) ~threads ~fs_chunk ~nfs_chunk ~func checked =
  let params = [ ("num_threads", threads) ] in
  let nest = Loopir.Lower.lower checked ~func ~params in
  let base = Model.default_config ~arch ~threads () in
  let cfg_fs = { base with Model.chunk = Some fs_chunk } in
  let cfg_nfs = { base with Model.chunk = Some nfs_chunk } in
  let n_fs = count ~mode cfg_fs ~nest ~checked in
  let n_nfs = count ~mode cfg_nfs ~nest ~checked in
  let env v = List.assoc_opt v params in
  let nest_fs_chunk =
    (* the Eq. 1 breakdown must describe the FS-chunk execution *)
    {
      nest with
      Loopir.Loop_nest.pragma =
        {
          nest.Loopir.Loop_nest.pragma with
          Minic.Ast.schedule = Some (Minic.Ast.Sched_static (Some fs_chunk));
        };
    }
  in
  let breakdown =
    Costmodel.Total_cost.compute ~fs_cost_factor ~contention ~arch ~threads
      ~fs_cases:n_fs ~env ~checked nest_fs_chunk
  in
  let excess_cycles =
    float_of_int (max 0 (n_fs - n_nfs))
    *. float_of_int arch.Archspec.Arch.coherence_latency
    *. fs_cost_factor
    /. float_of_int threads
  in
  let percent =
    if breakdown.Costmodel.Total_cost.total_cycles <= 0. then 0.
    else 100. *. excess_cycles /. breakdown.Costmodel.Total_cost.total_cycles
  in
  { threads; fs_chunk; nfs_chunk; n_fs; n_nfs; percent; breakdown }

let pp ppf a =
  Format.fprintf ppf
    "threads=%d chunk %d vs %d: N_fs=%d N_nfs=%d -> %.1f%% of loop time"
    a.threads a.fs_chunk a.nfs_chunk a.n_fs a.n_nfs a.percent

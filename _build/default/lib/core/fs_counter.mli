(** The model's FS-counting engine: per-thread stack-distance cache states
    plus an O(1) bitmask index of which threads hold each line in written
    state.  Semantically identical to folding {!Detect.fs_cases_for_insert}
    over the states (tests cross-check the two); this version makes the
    1-to-All comparison a constant-time SWAR popcount.

    Up to 62 threads the per-line mask is a single word; wider thread
    counts transparently switch to a {!Cachesim.Bitset} per line. *)

type t

val create : threads:int -> capacity:int -> t
(** @raise Invalid_argument when [threads < 1]. *)

val process : t -> me:int -> line:int -> written:bool -> int
(** Count the FS cases triggered by thread [me] inserting [line] (the φ
    comparison against all other states), then insert it. *)

val process_entries : t -> me:int -> Ownership.entry list -> int

val invalidate_others : t -> me:int -> line:int -> unit
(** Drop [line] from every other thread's state (write-invalidate
    ablation). *)

val state : t -> int -> Thread_cache_state.t
(** Direct access to one thread's stack (for tests). *)

val threads : t -> int

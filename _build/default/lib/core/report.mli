(** Plain-text table rendering for benchmark output and the CLI. *)

val table : header:string list -> string list list -> string
(** Render rows under a header with aligned columns. *)

val kcount : int -> string
(** Format a count in thousands with digit grouping, paper-style:
    [94421123] is ["94,421K"]; values below 1000 print as-is. *)

val pct : float -> string
(** One-decimal percentage, e.g. ["6.9%"]. *)

val seconds : float -> string

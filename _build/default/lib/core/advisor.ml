type victim = {
  base : string;
  repr : string;
  parallel_stride : int;
  padding_bytes : int;
}

type advice = {
  threads : int;
  sweep : (int * int) list;
  best_chunk : int option;
  victims : victim list;
}

let find_victims ~line_bytes (nest : Loopir.Loop_nest.t) =
  let pvar =
    (Loopir.Loop_nest.parallel_loop nest).Loopir.Loop_nest.var
  in
  let step = (Loopir.Loop_nest.parallel_loop nest).Loopir.Loop_nest.step in
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (r : Loopir.Array_ref.t) ->
      if not (Loopir.Array_ref.is_write r) then None
      else begin
        let c = abs (Loopir.Affine.coeff r.Loopir.Array_ref.offset pvar) * step in
        if c > 0 && c < line_bytes && not (Hashtbl.mem seen r.Loopir.Array_ref.base)
        then begin
          Hashtbl.replace seen r.Loopir.Array_ref.base ();
          Some
            {
              base = r.Loopir.Array_ref.base;
              repr = r.Loopir.Array_ref.repr;
              parallel_stride = c;
              (* pad each element so consecutive parallel iterations write
                 to different lines *)
              padding_bytes = line_bytes - c;
            }
        end
        else None
      end)
    nest.Loopir.Loop_nest.refs

let advise ?(arch = Archspec.Arch.paper_machine)
    ?(chunks = [ 1; 2; 4; 8; 16; 32; 64 ]) ?(threshold = 0.05)
    ?(pred_runs = 16) ?domains ~threads ~func checked =
  let nest =
    Loopir.Lower.lower checked ~func ~params:[ ("num_threads", threads) ]
  in
  let base_cfg = Model.default_config ~arch ~threads () in
  (* each candidate chunk is an independent predictor run: sweep them
     across domains *)
  let sweep =
    Par_sweep.map ?domains
      (fun chunk ->
        let cfg = { base_cfg with Model.chunk = Some chunk } in
        let p = Predict.predict ~runs:pred_runs cfg ~nest ~checked in
        (chunk, p.Predict.predicted_fs))
      (List.sort_uniq compare chunks)
  in
  let baseline =
    match sweep with
    | (_, fs1) :: _ -> fs1
    | [] -> 0
  in
  let best_chunk =
    if baseline = 0 then Option.map fst (List.nth_opt sweep 0)
    else
      List.find_map
        (fun (chunk, fs) ->
          if float_of_int fs <= threshold *. float_of_int baseline then
            Some chunk
          else None)
        sweep
  in
  let victims =
    find_victims ~line_bytes:(Archspec.Arch.line_bytes arch) nest
  in
  { threads; sweep; best_chunk; victims }

let pp ppf a =
  Format.fprintf ppf "@[<v>chunk-size sweep on %d threads:@," a.threads;
  List.iter
    (fun (c, fs) -> Format.fprintf ppf "  chunk %3d -> ~%d FS cases@," c fs)
    a.sweep;
  (match a.best_chunk with
  | Some c -> Format.fprintf ppf "recommended chunk: %d@," c
  | None ->
      Format.fprintf ppf
        "no candidate chunk eliminates the false sharing; consider padding@,");
  List.iter
    (fun v ->
      Format.fprintf ppf
        "victim %s (via %s): %dB stride between neighbour threads; pad each \
         element by %dB@,"
        v.base v.repr v.parallel_stride v.padding_bytes)
    a.victims;
  Format.fprintf ppf "@]"

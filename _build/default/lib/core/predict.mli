(** The FS prediction model (paper §III-E): evaluate only the first few
    chunk runs with the full model, fit [y = a·x + b] on the cumulative FS
    counts, and extrapolate to [x_max] (the total number of chunk runs) —
    replacing millions of evaluated iterations with a few chunk runs. *)

type fit_method = Paper  (** the paper's normal equations *) | Ols

type prediction = {
  predicted_fs : int;  (** [y_max = a·x_max + b], clamped at 0 *)
  line : Linreg.line;
  runs_evaluated : int;  (** chunk runs actually evaluated *)
  x_max : int;  (** total chunk runs of the whole nest *)
  iterations_evaluated : int;  (** model work spent on the prediction *)
  full_iterations : int;
      (** innermost iterations the full model would evaluate *)
  samples : Model.run_sample list;
}

val x_max : Model.config -> nest:Loopir.Loop_nest.t -> int
(** Total chunk runs: [ceil(parallel iterations / (threads * chunk))]
    summed over the sequential outer iterations. *)

val predict :
  ?runs:int ->
  ?fit:fit_method ->
  Model.config ->
  nest:Loopir.Loop_nest.t ->
  checked:Minic.Typecheck.checked ->
  prediction
(** [runs] defaults to 20 (the paper uses 10–50 depending on kernel). *)

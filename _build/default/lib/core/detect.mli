(** Step 4 of the paper's method (§III-D): the 1-to-All comparison.

    For a cache line [cl] newly inserted into thread [k]'s state, the number
    of false-sharing cases is [Σ_{j≠k} φ(cs_j, cl)] where [φ] is 1 iff
    thread [j]'s state holds [cl] in written (modified) state — Eqs. 2–4,
    with the mask excluding [j = k]. *)

val fs_cases_for_insert :
  states:Thread_cache_state.t array -> me:int -> line:int -> int
(** Count of other threads holding [line] modified. *)

val fs_cases_for_iteration :
  states:Thread_cache_state.t array ->
  me:int ->
  Ownership.entry list ->
  int
(** Apply the 1-to-All comparison for every line of an ownership list and
    insert each line into thread [me]'s state (in list order).  Returns the
    FS cases contributed by this iteration of this thread. *)

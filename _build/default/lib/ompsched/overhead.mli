(** OpenMP runtime overheads in cycles — the [Parallel_Overhead_c] and
    [Loop_Overhead_c] inputs of the paper's Eq. 1 (§II-B3).

    Values follow the magnitudes reported for OpenMP runtimes of the
    paper's era (EPCC-style microbenchmarks): region fork/join costs tens
    of thousands of cycles and grows with the team, static scheduling
    costs a few cycles per dispatched chunk. *)

type t = {
  fork_join_base : int;  (** cycles to enter+exit a parallel region *)
  fork_join_per_thread : int;  (** additional cycles per team member *)
  per_chunk : int;  (** static-schedule dispatch cost per chunk *)
  loop_per_iter : int;  (** induction increment + bound check, per iteration *)
}

val default : t

val parallel_overhead_cycles : t -> threads:int -> chunks_per_thread:int -> int
(** Per-thread share of the parallel overhead for one parallel region. *)

val loop_overhead_cycles : t -> iters:int -> int
(** Loop bookkeeping cycles for [iters] iterations executed by one thread. *)

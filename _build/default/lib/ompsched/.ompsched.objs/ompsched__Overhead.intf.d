lib/ompsched/overhead.mli:

lib/ompsched/schedule.ml: Format List

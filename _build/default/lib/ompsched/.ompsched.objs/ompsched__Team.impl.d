lib/ompsched/team.ml: Archspec Format Printf

lib/ompsched/overhead.ml:

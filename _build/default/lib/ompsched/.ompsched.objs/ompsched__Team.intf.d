lib/ompsched/team.mli: Archspec Format

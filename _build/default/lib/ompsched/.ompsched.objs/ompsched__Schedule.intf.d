lib/ompsched/schedule.mli: Format

type t = { threads : int; arch : Archspec.Arch.t }

let make ?(arch = Archspec.Arch.paper_machine) ~threads () =
  if threads < 1 || threads > arch.Archspec.Arch.cores then
    invalid_arg
      (Printf.sprintf "Team.make: threads=%d not in 1..%d" threads
         arch.Archspec.Arch.cores);
  { threads; arch }

let socket_of t tid = tid / t.arch.Archspec.Arch.cores_per_socket
let share_socket t a b = socket_of t a = socket_of t b

let pp ppf t =
  Format.fprintf ppf "%d threads on %s" t.threads t.arch.Archspec.Arch.name

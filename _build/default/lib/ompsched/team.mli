(** A team of OpenMP threads pinned one-per-core in order (thread [i] on
    core [i]), as in the paper's experiments. *)

type t = { threads : int; arch : Archspec.Arch.t }

val make : ?arch:Archspec.Arch.t -> threads:int -> unit -> t
(** Default architecture is {!Archspec.Arch.paper_machine}.
    @raise Invalid_argument if [threads] is not within [1 .. arch.cores]. *)

val socket_of : t -> int -> int
(** Socket hosting a thread's core. *)

val share_socket : t -> int -> int -> bool
val pp : Format.formatter -> t -> unit

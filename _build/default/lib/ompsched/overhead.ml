type t = {
  fork_join_base : int;
  fork_join_per_thread : int;
  per_chunk : int;
  loop_per_iter : int;
}

let default =
  {
    fork_join_base = 12_000;
    fork_join_per_thread = 900;
    per_chunk = 10;
    loop_per_iter = 2;
  }

let parallel_overhead_cycles t ~threads ~chunks_per_thread =
  t.fork_join_base + (t.fork_join_per_thread * threads)
  + (t.per_chunk * chunks_per_thread)

let loop_overhead_cycles t ~iters = t.loop_per_iter * iters

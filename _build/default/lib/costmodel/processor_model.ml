open Archspec

type t = {
  resource_cycles : float;
  dependency_cycles : float;
  cycles_per_iter : float;
}

let of_op_count ~core (ops : Op_count.t) =
  let unit_bound =
    List.fold_left
      (fun acc (cls, n) ->
        let units = max 1 (core.Latency.units_per_cycle cls) in
        max acc (float_of_int n /. float_of_int units))
      0. ops.Op_count.counts
  in
  let issue_bound =
    float_of_int (Op_count.total_ops ops)
    /. float_of_int (max 1 core.Latency.issue_width)
  in
  let resource_cycles = Float.max unit_bound issue_bound in
  let dependency_cycles = float_of_int ops.Op_count.recurrence_latency in
  {
    resource_cycles;
    dependency_cycles;
    cycles_per_iter = Float.max resource_cycles dependency_cycles;
  }

let of_nest (checked : Minic.Typecheck.checked) ~core
    (nest : Loopir.Loop_nest.t) =
  let f =
    match Minic.Ast.find_func checked.Minic.Typecheck.prog
            nest.Loopir.Loop_nest.func with
    | Some f -> f
    | None -> invalid_arg "Processor_model.of_nest: unknown function"
  in
  let locals = Minic.Typecheck.locals_of_func checked f in
  let type_of v =
    match List.assoc_opt v locals with
    | Some t -> Some t
    | None -> List.assoc_opt v checked.Minic.Typecheck.global_types
  in
  let ops =
    Op_count.of_body checked.Minic.Typecheck.structs ~type_of ~core
      nest.Loopir.Loop_nest.body
  in
  of_op_count ~core ops

let pp ppf t =
  Format.fprintf ppf "machine %.2f cy/iter (resource %.2f, dependency %.2f)"
    t.cycles_per_iter t.resource_cycles t.dependency_cycles

type t = {
  shared_cache_cycles_per_iter : float;
  bandwidth_cycles_per_iter : float;
  cycles_per_iter : float;
  demand_bytes_per_cycle : float;
  oversubscription : float;
}

let analyze ~(arch : Archspec.Arch.t) ~threads ~env ~checked
    (nest : Loopir.Loop_nest.t) =
  let base = Cache_model.analyze ~arch ~env nest in
  (* shared-cache pressure: re-run the cache model with the per-thread L3
     share *)
  let sharers = min threads arch.Archspec.Arch.cores_per_socket in
  let shared_cache_cycles_per_iter =
    if sharers <= 1 then 0.
    else begin
      let shrunken_l3 =
        let g = arch.Archspec.Arch.l3 in
        let per_way = Archspec.Cache_geom.sets g * g.Archspec.Cache_geom.line_bytes in
        (* shrink in whole ways so the geometry stays valid *)
        let ways = max 1 (g.Archspec.Cache_geom.associativity / sharers) in
        Archspec.Cache_geom.v
          ~hit_latency:g.Archspec.Cache_geom.hit_latency ~name:"L3/share"
          ~size_bytes:(ways * per_way)
          ~line_bytes:g.Archspec.Cache_geom.line_bytes ~associativity:ways ()
      in
      let pressured =
        Cache_model.analyze
          ~arch:{ arch with Archspec.Arch.l3 = shrunken_l3 }
          ~env nest
      in
      Float.max 0.
        (pressured.Cache_model.cycles_per_iter
        -. base.Cache_model.cycles_per_iter)
    end
  in
  (* bandwidth: bytes each iteration moves to/from DRAM *)
  let line = Archspec.Arch.line_bytes arch in
  let dram_bytes_per_iter =
    List.fold_left
      (fun acc g ->
        match g.Cache_model.source with
        | Cachesim.Coherence.Memory ->
            acc +. (g.Cache_model.lines_per_iter *. float_of_int line)
        | Cachesim.Coherence.L1 | Cachesim.Coherence.L2
        | Cachesim.Coherence.L3 | Cachesim.Coherence.C2C ->
            acc)
      0. base.Cache_model.groups
  in
  let proc =
    Processor_model.of_nest checked ~core:arch.Archspec.Arch.core nest
  in
  let base_cycles_per_iter =
    Float.max 1.
      (proc.Processor_model.cycles_per_iter
      +. base.Cache_model.cycles_per_iter
      +. shared_cache_cycles_per_iter)
  in
  let demand_bytes_per_cycle =
    float_of_int threads *. dram_bytes_per_iter /. base_cycles_per_iter
  in
  let peak = arch.Archspec.Arch.mem_bandwidth_bytes_per_cycle in
  let oversubscription = if peak <= 0. then 0. else demand_bytes_per_cycle /. peak in
  let bandwidth_cycles_per_iter =
    if oversubscription <= 1. then 0.
    else
      (* the memory-bound fraction of the iteration stretches by the
         oversubscription ratio *)
      base.Cache_model.cycles_per_iter *. (oversubscription -. 1.)
  in
  {
    shared_cache_cycles_per_iter;
    bandwidth_cycles_per_iter;
    cycles_per_iter = shared_cache_cycles_per_iter +. bandwidth_cycles_per_iter;
    demand_bytes_per_cycle;
    oversubscription;
  }

let pp ppf t =
  Format.fprintf ppf
    "contention %.3f cy/iter (shared-cache %.3f, bandwidth %.3f; demand \
     %.2f B/cy, x%.2f of peak)"
    t.cycles_per_iter t.shared_cache_cycles_per_iter
    t.bandwidth_cycles_per_iter t.demand_bytes_per_cycle t.oversubscription

lib/costmodel/cache_model.ml: Archspec Cachesim Float Format List Loopir Option

lib/costmodel/contention.mli: Archspec Format Loopir Minic

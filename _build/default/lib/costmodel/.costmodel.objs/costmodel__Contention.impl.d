lib/costmodel/contention.ml: Archspec Cache_model Cachesim Float Format List Loopir Processor_model

lib/costmodel/tlb_model.ml: Archspec Cache_model Float Format List Loopir

lib/costmodel/op_count.mli: Archspec Format Minic

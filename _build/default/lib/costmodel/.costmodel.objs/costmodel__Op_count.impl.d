lib/costmodel/op_count.ml: Archspec Format Hashtbl Latency List Minic Option

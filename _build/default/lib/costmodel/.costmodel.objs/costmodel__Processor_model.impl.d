lib/costmodel/processor_model.ml: Archspec Float Format Latency List Loopir Minic Op_count

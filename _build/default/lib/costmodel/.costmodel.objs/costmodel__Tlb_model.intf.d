lib/costmodel/tlb_model.mli: Archspec Format Loopir

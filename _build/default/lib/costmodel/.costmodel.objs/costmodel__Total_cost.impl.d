lib/costmodel/total_cost.ml: Archspec Cache_model Contention Format List Loopir Ompsched Processor_model Tlb_model

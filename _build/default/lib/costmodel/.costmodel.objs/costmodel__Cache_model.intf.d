lib/costmodel/cache_model.mli: Archspec Cachesim Format Loopir

lib/costmodel/processor_model.mli: Archspec Format Loopir Minic Op_count

lib/costmodel/total_cost.mli: Archspec Format Loopir Minic Ompsched

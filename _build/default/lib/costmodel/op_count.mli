(** Operation census of an innermost loop body, feeding the processor model
    (paper Fig. 3): how many operations of each {!Archspec.Latency.op_class}
    one iteration executes, and the longest dependence chain. *)

type t = {
  counts : (Archspec.Latency.op_class * int) list;
      (** per-class totals; classes with zero count omitted *)
  recurrence_latency : int;
      (** longest loop-carried dependence cycle in latency units, e.g. the
          floating-point add of a running sum ([s += ...]); 0 when the body
          has no recurrence *)
}

val of_body :
  Minic.Ctypes.struct_env ->
  type_of:(string -> Minic.Ast.ctype option) ->
  core:Archspec.Latency.t ->
  Minic.Ast.stmt list ->
  t
(** Count operations of one iteration.  Memory reads/writes of shared
    arrays count as [Load]/[Store] issue slots plus the address arithmetic
    of their subscripts; scalar locals live in registers and are free. *)

val get : t -> Archspec.Latency.op_class -> int
val total_ops : t -> int
val pp : Format.formatter -> t -> unit

(** TLB cost model — "the TLB is modeled as another level of cache"
    (paper §II-B2): page-granularity footprints against the TLB reach,
    charging the page-walk latency for each new page.  Same reuse logic as
    {!Cache_model} with one capacity level. *)

type t = {
  pages_per_iter : float;  (** new pages touched per innermost iteration *)
  fits_reach : bool;  (** working set within TLB reach *)
  cycles_per_iter : float;  (** [TLB_c] per innermost iteration *)
}

val analyze :
  arch:Archspec.Arch.t ->
  env:(string -> int option) ->
  Loopir.Loop_nest.t ->
  t

val pp : Format.formatter -> t -> unit

type t = {
  pages_per_iter : float;
  fits_reach : bool;
  cycles_per_iter : float;
}

let analyze ~(arch : Archspec.Arch.t) ~env (nest : Loopir.Loop_nest.t) =
  let page = arch.Archspec.Arch.page_bytes in
  let reach = arch.Archspec.Arch.tlb_entries * page in
  let trips = Cache_model.trips_of_nest ~env nest in
  let loop_vars = List.map fst trips in
  let nvars = List.length loop_vars in
  let inner_var = List.nth loop_vars (nvars - 1) in
  let groups =
    Loopir.Ref_group.form ~line_bytes:page nest.Loopir.Loop_nest.refs
  in
  (* working set of one innermost traversal, at page granularity *)
  let inner_footprint =
    Cache_model.footprint_bytes ~line_bytes:page ~trips
      ~levels:[ inner_var ] nest.Loopir.Loop_nest.refs
  in
  let fits_reach = inner_footprint <= reach in
  let pages_per_iter =
    List.fold_left
      (fun acc (g : Loopir.Ref_group.t) ->
        let c =
          abs
            (Loopir.Affine.coeff
               g.Loopir.Ref_group.leader.Loopir.Array_ref.offset inner_var)
        in
        if c = 0 then acc
        else acc +. Float.min 1. (float_of_int c /. float_of_int page))
      0. groups
  in
  let cycles_per_iter =
    (* pages are re-walked only when the traversal exceeds TLB reach; a
       resident working set pays only cold walks, amortized to ~0 *)
    if fits_reach then 0.
    else pages_per_iter *. float_of_int arch.Archspec.Arch.tlb_miss_latency
  in
  { pages_per_iter; fits_reach; cycles_per_iter }

let pp ppf t =
  Format.fprintf ppf "tlb %.4f cy/iter (%.4f pages/iter, %s)"
    t.cycles_per_iter t.pages_per_iter
    (if t.fits_reach then "fits reach" else "exceeds reach")

type group_cost = {
  group : Loopir.Ref_group.t;
  lines_per_iter : float;
  reuse_volume_bytes : int option;
  source : Cachesim.Coherence.source;
  penalty_per_iter : float;
}

type t = { groups : group_cost list; cycles_per_iter : float }

let round_up x a = (x + a - 1) / a * a

(* Trip counts per loop, outer variables pinned at their lower bounds. *)
let trips_of_nest ~env (nest : Loopir.Loop_nest.t) =
  let rec go env_acc = function
    | [] -> []
    | (loop : Loopir.Loop_nest.loop) :: rest ->
        let lookup v =
          match List.assoc_opt v env_acc with
          | Some n -> Some n
          | None -> env v
        in
        let trip = Loopir.Loop_nest.trip_count loop ~env:lookup in
        let lo =
          try Loopir.Expr_eval.eval lookup loop.Loopir.Loop_nest.lower
          with _ -> 0
        in
        (loop.Loopir.Loop_nest.var, trip)
        :: go ((loop.Loopir.Loop_nest.var, lo) :: env_acc) rest
  in
  go [] nest.Loopir.Loop_nest.loops

(* Dense-span approximation: bytes touched by a reference as the given
   variables sweep their trips. *)
let span_bytes ~trips ~levels (r : Loopir.Array_ref.t) =
  List.fold_left
    (fun acc v ->
      let c = abs (Loopir.Affine.coeff r.Loopir.Array_ref.offset v) in
      let trip = Option.value ~default:1 (List.assoc_opt v trips) in
      acc + (c * max 0 (trip - 1)))
    r.Loopir.Array_ref.size_bytes levels

let footprint_bytes ~line_bytes ~trips ~levels refs =
  let groups = Loopir.Ref_group.form ~line_bytes refs in
  List.fold_left
    (fun acc (g : Loopir.Ref_group.t) ->
      acc + round_up (span_bytes ~trips ~levels g.Loopir.Ref_group.leader)
              line_bytes)
    0 groups

let analyze ~(arch : Archspec.Arch.t) ~env (nest : Loopir.Loop_nest.t) =
  let line = Archspec.Arch.line_bytes arch in
  let trips = trips_of_nest ~env nest in
  let loop_vars =
    List.map (fun (l : Loopir.Loop_nest.loop) -> l.Loopir.Loop_nest.var)
      nest.Loopir.Loop_nest.loops
  in
  let nvars = List.length loop_vars in
  let inner_var = List.nth loop_vars (nvars - 1) in
  let vars_inside idx =
    List.filteri (fun i _ -> i > idx) loop_vars
  in
  let groups = Loopir.Ref_group.form ~line_bytes:line nest.Loopir.Loop_nest.refs in
  let capacity = function
    | Cachesim.Coherence.L1 -> arch.Archspec.Arch.l1.Archspec.Cache_geom.size_bytes
    | Cachesim.Coherence.L2 -> arch.Archspec.Arch.l2.Archspec.Cache_geom.size_bytes
    | Cachesim.Coherence.L3 -> arch.Archspec.Arch.l3.Archspec.Cache_geom.size_bytes
    | Cachesim.Coherence.C2C | Cachesim.Coherence.Memory -> max_int
  in
  let latency = function
    | Cachesim.Coherence.L1 -> arch.Archspec.Arch.l1.Archspec.Cache_geom.hit_latency
    | Cachesim.Coherence.L2 -> arch.Archspec.Arch.l2.Archspec.Cache_geom.hit_latency
    | Cachesim.Coherence.L3 -> arch.Archspec.Arch.l3.Archspec.Cache_geom.hit_latency
    | Cachesim.Coherence.C2C -> arch.Archspec.Arch.coherence_latency
    | Cachesim.Coherence.Memory -> arch.Archspec.Arch.mem_latency
  in
  let l1_hit = latency Cachesim.Coherence.L1 in
  let level_holding volume =
    if volume <= capacity Cachesim.Coherence.L1 then Cachesim.Coherence.L1
    else if volume <= capacity Cachesim.Coherence.L2 then Cachesim.Coherence.L2
    else if volume <= capacity Cachesim.Coherence.L3 then Cachesim.Coherence.L3
    else Cachesim.Coherence.Memory
  in
  (* Reuse carried by the innermost enclosing loop whose variable is absent
     from the subscript. *)
  let carried_reuse (g : Loopir.Ref_group.t) =
    let off = g.Loopir.Ref_group.leader.Loopir.Array_ref.offset in
    let rec find idx best =
      if idx >= nvars then best
      else begin
        let v = List.nth loop_vars idx in
        let best =
          if Loopir.Affine.coeff off v = 0 then Some idx else best
        in
        find (idx + 1) best
      end
    in
    match find 0 None with
    | Some idx ->
        Some
          (footprint_bytes ~line_bytes:line ~trips ~levels:(vars_inside idx)
             nest.Loopir.Loop_nest.refs)
    | None -> None
  in
  (* Cross-group reuse: a group whose offset lags a sibling group of the
     same base by k strides of some enclosing loop re-touches that
     sibling's lines k iterations of that loop later. *)
  let cross_group_reuse (g : Loopir.Ref_group.t) =
    let leader = g.Loopir.Ref_group.leader in
    let candidates =
      List.filter
        (fun (other : Loopir.Ref_group.t) ->
          other != g
          && other.Loopir.Ref_group.leader.Loopir.Array_ref.base
             = leader.Loopir.Array_ref.base)
        groups
    in
    List.filter_map
      (fun (other : Loopir.Ref_group.t) ->
        match
          Loopir.Affine.is_const
            (Loopir.Affine.sub
               other.Loopir.Ref_group.leader.Loopir.Array_ref.offset
               leader.Loopir.Array_ref.offset)
        with
        | Some d when d > 0 ->
            (* find an enclosing loop whose stride divides the gap *)
            let rec find idx =
              if idx >= nvars then None
              else begin
                let v = List.nth loop_vars idx in
                let c = Loopir.Affine.coeff leader.Loopir.Array_ref.offset v in
                let trip = Option.value ~default:1 (List.assoc_opt v trips) in
                if c > 0 && d mod c = 0 && d / c >= 1 && d / c < trip then
                  Some
                    (d / c
                    * footprint_bytes ~line_bytes:line ~trips
                        ~levels:(vars_inside idx) nest.Loopir.Loop_nest.refs)
                else find (idx + 1)
              end
            in
            find 0
        | Some _ | None -> None)
      candidates
    |> function
    | [] -> None
    | l -> Some (List.fold_left min max_int l)
  in
  let group_costs =
    List.map
      (fun (g : Loopir.Ref_group.t) ->
        let off = g.Loopir.Ref_group.leader.Loopir.Array_ref.offset in
        let c_in = abs (Loopir.Affine.coeff off inner_var) in
        let lines_per_iter =
          if c_in = 0 then 0.
          else Float.min 1. (float_of_int c_in /. float_of_int line)
        in
        let reuse_volume_bytes =
          match carried_reuse g with
          | Some v -> Some v
          | None -> cross_group_reuse g
        in
        let source =
          match reuse_volume_bytes with
          | Some v -> level_holding v
          | None -> Cachesim.Coherence.Memory
        in
        let penalty = max 0 (latency source - l1_hit) in
        let penalty_per_iter = lines_per_iter *. float_of_int penalty in
        { group = g; lines_per_iter; reuse_volume_bytes; source;
          penalty_per_iter })
      groups
  in
  {
    groups = group_costs;
    cycles_per_iter =
      List.fold_left (fun acc c -> acc +. c.penalty_per_iter) 0. group_costs;
  }

let source_name = function
  | Cachesim.Coherence.L1 -> "L1"
  | Cachesim.Coherence.L2 -> "L2"
  | Cachesim.Coherence.L3 -> "L3"
  | Cachesim.Coherence.C2C -> "c2c"
  | Cachesim.Coherence.Memory -> "mem"

let pp ppf t =
  Format.fprintf ppf "@[<v>cache %.3f cy/iter@," t.cycles_per_iter;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %s: %.3f lines/iter, reuse %s, from %s, %.3f cy/iter@,"
        c.group.Loopir.Ref_group.leader.Loopir.Array_ref.repr c.lines_per_iter
        (match c.reuse_volume_bytes with
        | Some v -> string_of_int v ^ "B"
        | None -> "none")
        (source_name c.source) c.penalty_per_iter)
    t.groups;
  Format.fprintf ppf "@]"

(** The Open64-style cache model (paper Fig. 4, §II-B2): predicts per-
    iteration cache-miss cycles from footprints of reference groups.

    Method (a footprint approximation of stack-distance analysis):
    - references are partitioned into {!Loopir.Ref_group} groups; spatial
      reuse inside a group costs one footprint;
    - a group touching new lines every iteration (subscript varies with the
      innermost variable) misses at rate [stride / line_bytes] per
      iteration;
    - temporal reuse is carried by the innermost enclosing loop whose
      variable is absent from the subscript; the reuse survives in a cache
      level iff the footprint of the data touched between reuses fits that
      level's capacity;
    - cross-group reuse (e.g. [A\[i+1\]\[j\]] feeding [A\[i-1\]\[j\]] two
      outer iterations later) is detected when two groups of one base
      differ by an integer multiple of an enclosing loop's stride.

    Each group's misses are then charged the latency of the closest level
    that holds its reuse set, minus the L1 hit latency already accounted by
    the processor model. *)

type group_cost = {
  group : Loopir.Ref_group.t;
  lines_per_iter : float;  (** new lines touched per innermost iteration *)
  reuse_volume_bytes : int option;
      (** bytes between reuses; [None] = streaming, no reuse *)
  source : Cachesim.Coherence.source;  (** level serving this group's misses *)
  penalty_per_iter : float;  (** extra cycles per innermost iteration *)
}

type t = {
  groups : group_cost list;
  cycles_per_iter : float;  (** [Cache_c] per innermost iteration *)
}

val analyze :
  arch:Archspec.Arch.t ->
  env:(string -> int option) ->
  Loopir.Loop_nest.t ->
  t
(** [env] must bind parameters used in the bounds (e.g. [num_threads]).
    Outer-variable-dependent bounds are evaluated at the outer variables'
    lower bounds. *)

val trips_of_nest :
  env:(string -> int option) -> Loopir.Loop_nest.t -> (string * int) list
(** Trip count of every loop level, outer variables pinned at their lower
    bounds (exposed for the TLB model and tests). *)

val footprint_bytes :
  line_bytes:int ->
  trips:(string * int) list ->
  levels:string list ->
  Loopir.Array_ref.t list ->
  int
(** Bytes touched by one execution of the sub-nest spanned by the loop
    variables [levels] (innermost portion), using the dense-span
    approximation.  Exposed for tests and the TLB model. *)

val pp : Format.formatter -> t -> unit

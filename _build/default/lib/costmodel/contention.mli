(** Shared-resource contention — the model extension the paper names as
    future work (§VI: "other cache contention issues … such as shared cache
    and bus interferences").

    Two effects, both estimated per innermost iteration:

    - {b shared-cache pressure}: the L3 is shared by the cores of a socket,
      so a team of [t] threads effectively sees [size/min(t, per_socket)]
      each.  We re-run the {!Cache_model} against the shrunken L3 and
      charge the difference — reuse that fit a private L3 but not the
      per-thread share moves out to memory.

    - {b memory-bandwidth saturation}: each thread demands
      [bytes_per_iter / cycles_per_iter] of DRAM bandwidth; when the team's
      aggregate demand exceeds the machine's sustainable bandwidth, memory
      stalls inflate by the oversubscription ratio.

    Both are zero for a single thread, and the second is zero whenever the
    working set is cache-resident — matching intuition and the simulator. *)

type t = {
  shared_cache_cycles_per_iter : float;
  bandwidth_cycles_per_iter : float;
  cycles_per_iter : float;  (** sum of the two *)
  demand_bytes_per_cycle : float;  (** the team's aggregate DRAM demand *)
  oversubscription : float;  (** demand / peak; <= 1 means no saturation *)
}

val analyze :
  arch:Archspec.Arch.t ->
  threads:int ->
  env:(string -> int option) ->
  checked:Minic.Typecheck.checked ->
  Loopir.Loop_nest.t ->
  t

val pp : Format.formatter -> t -> unit

(** The Open64-style processor model (paper Fig. 3): estimated CPU cycles to
    execute one iteration of the innermost loop,
    [Machine_c_per_iter = max(Resource_c, Dependency_latency_c)].

    [Resource_c] schedules the iteration's operations against the core's
    functional units and overall issue width; [Dependency_latency_c] is the
    loop-carried recurrence bound (a reduction cannot retire faster than
    its add latency per iteration). *)

type t = {
  resource_cycles : float;
  dependency_cycles : float;
  cycles_per_iter : float;  (** max of the two *)
}

val of_op_count : core:Archspec.Latency.t -> Op_count.t -> t

val of_nest :
  Minic.Typecheck.checked ->
  core:Archspec.Latency.t ->
  Loopir.Loop_nest.t ->
  t
(** Convenience: census the nest's innermost body and evaluate. *)

val pp : Format.formatter -> t -> unit

(** Pretty-printer: renders the AST back to C-like text (used in reports and
    round-trip tests). *)

val pp_ctype : Format.formatter -> Ast.ctype -> unit
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_pragma : Format.formatter -> Ast.pragma -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string
val program_to_string : Ast.program -> string

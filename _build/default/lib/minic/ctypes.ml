type struct_env = (string * (Ast.ctype * string) list) list

exception Unknown_struct of string
exception Unknown_field of string * string

let struct_env_of_program p = Ast.struct_defs p

let fields_of env name =
  match List.assoc_opt name env with
  | Some fs -> fs
  | None -> raise (Unknown_struct name)

let round_up x a = (x + a - 1) / a * a

let rec alignof env = function
  | Ast.Tvoid -> 1
  | Ast.Tchar -> 1
  | Ast.Tint -> 4
  | Ast.Tlong -> 8
  | Ast.Tfloat -> 4
  | Ast.Tdouble -> 8
  | Ast.Tarray (t, _) -> alignof env t
  | Ast.Tstruct name ->
      List.fold_left
        (fun a (t, _) -> max a (alignof env t))
        1 (fields_of env name)

let rec sizeof env = function
  | Ast.Tvoid -> 0
  | Ast.Tchar -> 1
  | Ast.Tint -> 4
  | Ast.Tlong -> 8
  | Ast.Tfloat -> 4
  | Ast.Tdouble -> 8
  | Ast.Tarray (t, n) -> n * sizeof env t
  | Ast.Tstruct name as ty ->
      let off =
        List.fold_left
          (fun off (t, _) -> round_up off (alignof env t) + sizeof env t)
          0 (fields_of env name)
      in
      round_up off (alignof env ty)

let field_offset env sname fname =
  let rec go off = function
    | [] -> raise (Unknown_field (sname, fname))
    | (t, f) :: rest ->
        let off = round_up off (alignof env t) in
        if f = fname then off else go (off + sizeof env t) rest
  in
  go 0 (fields_of env sname)

let field_type env sname fname =
  match List.find_opt (fun (_, f) -> f = fname) (fields_of env sname) with
  | Some (t, _) -> t
  | None -> raise (Unknown_field (sname, fname))

let scalar = function
  | Ast.Tchar | Ast.Tint | Ast.Tlong | Ast.Tfloat | Ast.Tdouble -> true
  | Ast.Tvoid | Ast.Tstruct _ | Ast.Tarray _ -> false

let is_float = function
  | Ast.Tfloat | Ast.Tdouble -> true
  | Ast.Tvoid | Ast.Tchar | Ast.Tint | Ast.Tlong | Ast.Tstruct _
  | Ast.Tarray _ ->
      false

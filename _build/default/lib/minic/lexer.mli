(** Hand-written lexer for the mini-C dialect.

    [#pragma] lines become single {!Token.PRAGMA} tokens carrying the rest of
    the line.  [#define] lines must be stripped beforehand by {!Preproc};
    encountering one here is an error.  Both [//] and [/* ... */] comments
    are skipped. *)

exception Error of string * int  (** message, line number *)

val tokenize : string -> Token.located list
(** Tokenize a whole source string.  The result always ends with
    {!Token.EOF}.  @raise Error on an unrecognized character or an
    unterminated comment. *)

(** Tiny preprocessor: collects object-like [#define NAME expr] macros.

    Only integer-valued constant macros are supported — enough for the
    problem-size constants ([N], [M], chunk sizes) that the paper's kernels
    use.  The right-hand side may reference earlier macros and use
    [+ - * / % ( )].  Define lines are blanked out (line numbers preserved);
    everything else, including [#pragma] lines, passes through untouched. *)

type macros = (string * int) list
(** Macro table in definition order; later definitions shadow earlier ones
    when looked up with {!lookup}. *)

exception Error of string * int

val run : string -> macros * string
(** [run src] returns the macro table and the source with [#define] lines
    blanked. *)

val lookup : macros -> string -> int option

val eval_const_expr : macros -> string -> int
(** Evaluate a constant integer expression (used for array dimensions and
    pragma chunk sizes).  @raise Error on non-constant input. *)

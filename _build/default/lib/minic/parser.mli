(** Recursive-descent parser for the mini-C dialect.

    The entry point {!parse_program} runs the preprocessor, lexes, and builds
    an {!Ast.program}.  Macro identifiers are folded to integer literals at
    parse time, and array dimensions must be constant expressions.  An
    OpenMP [#pragma] is only legal immediately before a [for] statement. *)

exception Error of string * int  (** message, line *)

val parse_program : string -> Ast.program
(** Parse a full translation unit from source text. *)

val parse_pragma : Preproc.macros -> string -> int -> Ast.pragma
(** [parse_pragma macros text line] parses the text after [#pragma]; only
    [omp parallel for] pragmas (with [private], [shared], [reduction],
    [schedule(static[,chunk])] and [num_threads] clauses) are accepted. *)

val parse_expr_string : Preproc.macros -> string -> Ast.expr
(** Parse a standalone expression (used by tests and by tools). *)

lib/minic/ast.ml: List Preproc

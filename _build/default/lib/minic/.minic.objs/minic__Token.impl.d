lib/minic/token.ml:

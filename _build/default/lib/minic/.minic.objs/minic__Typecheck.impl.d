lib/minic/typecheck.ml: Ast Ctypes Format List

lib/minic/parser.mli: Ast Preproc

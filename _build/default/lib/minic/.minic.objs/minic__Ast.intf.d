lib/minic/ast.mli: Preproc

lib/minic/pretty.ml: Ast Float Format List String

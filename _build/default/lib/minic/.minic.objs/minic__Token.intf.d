lib/minic/token.mli:

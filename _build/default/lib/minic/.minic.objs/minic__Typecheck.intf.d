lib/minic/typecheck.mli: Ast Ctypes

lib/minic/preproc.ml: Lexer List Printf String Token

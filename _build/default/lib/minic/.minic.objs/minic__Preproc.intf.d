lib/minic/preproc.mli:

lib/minic/parser.ml: Array Ast Lexer List Preproc Printf Token

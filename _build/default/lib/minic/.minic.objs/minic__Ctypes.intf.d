lib/minic/ctypes.mli: Ast

lib/minic/ctypes.ml: Ast List

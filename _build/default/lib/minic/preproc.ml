type macros = (string * int) list

exception Error of string * int

let lookup macros name = List.assoc_opt name macros

(* Constant-expression evaluation over a token list: a classic precedence
   cascade (add < mul < unary < atom).  Used both for macro bodies and for
   array-dimension expressions. *)
let eval_tokens macros toks line =
  let toks = ref (List.map (fun { Token.tok; _ } -> tok) toks) in
  let peek () = match !toks with [] -> Token.EOF | t :: _ -> t in
  let advance () = match !toks with [] -> () | _ :: r -> toks := r in
  let fail msg = raise (Error (msg, line)) in
  let rec atom () =
    match peek () with
    | Token.INT_LIT n -> advance (); n
    | Token.IDENT s -> (
        advance ();
        match lookup macros s with
        | Some v -> v
        | None -> fail (Printf.sprintf "undefined macro %S in constant" s))
    | Token.LPAREN ->
        advance ();
        let v = add_level () in
        (match peek () with
        | Token.RPAREN -> advance ()
        | _ -> fail "expected ')' in constant expression");
        v
    | Token.MINUS -> advance (); -atom ()
    | Token.PLUS -> advance (); atom ()
    | t -> fail ("unexpected token in constant expression: " ^ Token.to_string t)
  and mul_level () =
    let rec go acc =
      match peek () with
      | Token.STAR -> advance (); go (acc * atom ())
      | Token.SLASH ->
          advance ();
          let d = atom () in
          if d = 0 then fail "division by zero in constant expression";
          go (acc / d)
      | Token.PERCENT ->
          advance ();
          let d = atom () in
          if d = 0 then fail "modulo by zero in constant expression";
          go (acc mod d)
      | _ -> acc
    in
    go (atom ())
  and add_level () =
    let rec go acc =
      match peek () with
      | Token.PLUS -> advance (); go (acc + mul_level ())
      | Token.MINUS -> advance (); go (acc - mul_level ())
      | _ -> acc
    in
    go (mul_level ())
  in
  let v = add_level () in
  (match peek () with
  | Token.EOF -> ()
  | t -> fail ("trailing token in constant expression: " ^ Token.to_string t));
  v

let eval_const_expr macros src =
  eval_tokens macros (Lexer.tokenize src) 0

let split_lines s =
  String.split_on_char '\n' s

let is_define line =
  let t = String.trim line in
  String.length t > 7 && String.sub t 0 7 = "#define"

let parse_define macros line lineno =
  let t = String.trim line in
  let rest = String.trim (String.sub t 7 (String.length t - 7)) in
  (* name is the leading identifier; everything after is the body *)
  let len = String.length rest in
  let rec name_end i =
    if i < len
       && ((rest.[i] >= 'a' && rest.[i] <= 'z')
           || (rest.[i] >= 'A' && rest.[i] <= 'Z')
           || (rest.[i] >= '0' && rest.[i] <= '9')
           || rest.[i] = '_')
    then name_end (i + 1)
    else i
  in
  let e = name_end 0 in
  if e = 0 then raise (Error ("#define without a name", lineno));
  let name = String.sub rest 0 e in
  if e < len && rest.[e] = '(' then
    raise (Error ("function-like macros are not supported", lineno));
  let body = String.trim (String.sub rest e (len - e)) in
  if body = "" then raise (Error ("#define without a value", lineno));
  let value =
    try eval_tokens macros (Lexer.tokenize body) lineno
    with Lexer.Error (m, _) -> raise (Error (m, lineno))
  in
  (name, value)

let run src =
  let lines = split_lines src in
  let macros = ref [] in
  let out =
    List.mapi
      (fun idx line ->
        if is_define line then begin
          let name, value = parse_define !macros line (idx + 1) in
          macros := (name, value) :: !macros;
          ""
        end
        else line)
      lines
  in
  (* keep definition order: first definition first, with later shadowing
     handled by List.assoc_opt scanning from the most recent *)
  (!macros, String.concat "\n" out)

(** Static checks and expression typing for mini-C programs. *)

exception Type_error of string

type checked = {
  prog : Ast.program;
  structs : Ctypes.struct_env;
  global_types : (string * Ast.ctype) list;
}

val check_program : Ast.program -> checked
(** Validates the whole program: struct references resolve, every identifier
    is in scope, indexing is applied to arrays, field access to structs,
    assignment targets are scalar lvalues, conditions and operands are
    numeric, and math builtins are called with the right arity.
    @raise Type_error otherwise. *)

val builtins : (string * int) list
(** Supported math builtins with their arity: sin, cos, tan, sqrt, fabs,
    exp, log, pow, fmin, fmax. *)

val implicit_params : (string * Ast.ctype) list
(** Identifiers that are always in scope without a declaration —
    [num_threads : int], the OpenMP team size the compile-time model is
    given (paper §III: "the compiler needs information about the number of
    threads executing the loop").  They are analysis parameters, not
    memory-resident globals. *)

val type_of_expr :
  Ctypes.struct_env -> (string -> Ast.ctype option) -> Ast.expr -> Ast.ctype
(** [type_of_expr structs lookup e] types [e] with [lookup] resolving
    variables.  @raise Type_error on ill-typed expressions. *)

val locals_of_func : checked -> Ast.func -> (string * Ast.ctype) list
(** All local declarations of a function (params, [Sdecl]s anywhere in the
    body, and loop induction variables, which default to [int]).  Used by
    the lowering pass and the interpreter to build scopes. *)

(** Sizes, alignments and struct layouts, following the usual LP64 C ABI
    (char 1, int 4, long 8, float 4, double 8; structs padded to the maximum
    field alignment).

    The false-sharing model needs exact byte offsets of every reference —
    including fields of structured array elements (paper §IV: "memory
    offsets for arrays storing structured data types") — which this module
    provides. *)

type struct_env = (string * (Ast.ctype * string) list) list
(** Struct definitions by name, fields in declaration order. *)

exception Unknown_struct of string
exception Unknown_field of string * string  (** struct, field *)

val struct_env_of_program : Ast.program -> struct_env

val sizeof : struct_env -> Ast.ctype -> int
val alignof : struct_env -> Ast.ctype -> int

val field_offset : struct_env -> string -> string -> int
(** [field_offset env struct_name field] is the byte offset of [field]. *)

val field_type : struct_env -> string -> string -> Ast.ctype

val scalar : Ast.ctype -> bool
(** true for char/int/long/float/double *)

val is_float : Ast.ctype -> bool
(** true for float/double *)

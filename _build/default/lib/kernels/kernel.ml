type t = {
  name : string;
  description : string;
  source : string;
  func : string;
  init_func : string option;
  fs_chunk : int;
  nfs_chunk : int;
  pred_runs : int;
}

let parse t = Minic.Typecheck.check_program (Minic.Parser.parse_program t.source)

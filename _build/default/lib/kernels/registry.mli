(** All bundled kernels, by name. *)

val all : unit -> Kernel.t list
(** Default-sized instances of every kernel. *)

val find : string -> Kernel.t option
val names : unit -> string list

(** SAXPY-style vector update, inner-parallel — a minimal quickstart kernel:
    [y\[i\] += a \* x\[i\]] with [schedule(static,1)] false-shares every
    line of [y]; chunk 8 (one line of doubles) removes it entirely. *)

val source : ?n:int -> unit -> string
val kernel : ?n:int -> unit -> Kernel.t

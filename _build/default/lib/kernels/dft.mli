(** Discrete-Fourier-transform kernel (paper §IV-B, Tables II and V,
    Fig. 9): for each output frequency [k], the inner loop over samples is
    parallelized; each thread writes [tmp_re\[n\]]/[tmp_im\[n\]] for its
    assigned [n] — with [schedule(static,1)] neighbouring threads share
    every 64-byte line of both arrays.  The paper's non-FS chunk is 16. *)

val source : ?freqs:int -> ?samples:int -> unit -> string
(** Defaults: 16 output frequencies over 30720 samples (the inner trip is
    divisible by [threads * chunk] for chunks 1 and 16 at every measured
    team size). *)

val kernel : ?freqs:int -> ?samples:int -> unit -> Kernel.t

lib/kernels/heat.mli: Kernel

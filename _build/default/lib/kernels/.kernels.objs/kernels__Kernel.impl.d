lib/kernels/kernel.ml: Minic

lib/kernels/transpose.mli: Kernel

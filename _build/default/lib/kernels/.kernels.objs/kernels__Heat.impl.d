lib/kernels/heat.ml: Kernel Printf

lib/kernels/linreg_kernel.mli: Kernel

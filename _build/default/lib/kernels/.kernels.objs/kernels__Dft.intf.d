lib/kernels/dft.mli: Kernel

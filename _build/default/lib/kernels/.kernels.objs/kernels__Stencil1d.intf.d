lib/kernels/stencil1d.mli: Kernel

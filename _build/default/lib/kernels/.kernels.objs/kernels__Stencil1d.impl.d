lib/kernels/stencil1d.ml: Kernel Printf

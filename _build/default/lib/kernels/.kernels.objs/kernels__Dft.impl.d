lib/kernels/dft.ml: Kernel Printf

lib/kernels/transpose.ml: Kernel Printf

lib/kernels/matvec.ml: Kernel Printf

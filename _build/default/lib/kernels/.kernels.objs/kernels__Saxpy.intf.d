lib/kernels/saxpy.mli: Kernel

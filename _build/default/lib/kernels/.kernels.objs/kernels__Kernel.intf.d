lib/kernels/kernel.mli: Minic

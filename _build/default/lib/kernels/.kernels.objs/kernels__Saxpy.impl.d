lib/kernels/saxpy.ml: Kernel Printf

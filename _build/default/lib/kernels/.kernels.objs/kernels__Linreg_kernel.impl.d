lib/kernels/linreg_kernel.ml: Kernel Printf

lib/kernels/registry.ml: Dft Heat Kernel Linreg_kernel List Matvec Saxpy Stencil1d Transpose

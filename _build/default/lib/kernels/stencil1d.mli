(** 1-D three-point stencil over a time loop — exercises cross-group
    temporal reuse in the cache model and boundary-only false sharing at
    larger chunks. *)

val source : ?n:int -> ?steps:int -> unit -> string
val kernel : ?n:int -> ?steps:int -> unit -> Kernel.t

(** Matrix transpose, outer loop parallel: the write [B\[j\]\[i\]] strides
    one element per {e parallel} iteration, so with [schedule(static,1)]
    every inner iteration makes neighbouring threads write the same line
    of a [B] column — false sharing across the entire output matrix. *)

val source : ?n:int -> unit -> string
val kernel : ?n:int -> unit -> Kernel.t

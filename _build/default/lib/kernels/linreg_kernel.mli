(** Phoenix linear-regression kernel (paper Fig. 1, §II-A, Tables III and
    VI): the {e outermost} loop over work units is parallelized with
    [schedule(static,1)], so adjacent threads update adjacent 40-byte
    [struct acc] accumulator elements of [tid_args] — classic false sharing
    on every inner iteration.  The inner trip count is [M / num_threads],
    which makes both the total work and the modeled FS count shrink with
    the team size (the effect discussed for Table III).

    The paper's point data lives behind a per-unit pointer; our dialect has
    no pointers, so all units stream the same read-only [points] array —
    read sharing, which cannot cause false sharing, preserving the access
    pattern that matters (see DESIGN.md substitutions). *)

val source : ?nacc:int -> ?m:int -> unit -> string
(** [nacc] work units (default 4800, balanced for chunks 1 and 10 at every
    measured team size), [m] total points (default 512; each unit streams
    [m / num_threads] of them, as in the paper's kernel). *)

val kernel : ?nacc:int -> ?m:int -> unit -> Kernel.t

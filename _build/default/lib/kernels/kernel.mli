(** A benchmark kernel: mini-C source plus the paper's experiment
    parameters (FS-prone and optimized chunk sizes, prediction depth). *)

type t = {
  name : string;
  description : string;
  source : string;
  func : string;  (** the OpenMP-parallel kernel function *)
  init_func : string option;  (** sequential initialization to run first *)
  fs_chunk : int;  (** chunk size exhibiting false sharing *)
  nfs_chunk : int;  (** optimized chunk size (paper's non-FS case) *)
  pred_runs : int;  (** chunk runs the paper's prediction evaluates *)
}

val parse : t -> Minic.Typecheck.checked
(** Parse and typecheck the kernel's source.
    @raise Minic.Parser.Error or Minic.Typecheck.Type_error on bad source —
    kernels ship with the library, so failures indicate a bug. *)

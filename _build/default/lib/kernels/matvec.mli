(** Dense matrix-vector product, outer loop parallel: with
    [schedule(static,1)] adjacent threads read-modify-write adjacent
    8-byte elements of the result vector [y] on every inner iteration —
    the same accumulator-ping-pong pattern as the linear-regression
    kernel, but on a plain scalar array. *)

val source : ?rows:int -> ?cols:int -> unit -> string
val kernel : ?rows:int -> ?cols:int -> unit -> Kernel.t

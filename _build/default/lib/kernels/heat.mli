(** Heat-diffusion kernel (paper §IV-B, Tables I and IV, Fig. 8): a 2-D
    five-point Jacobi sweep, parallelized at the {e innermost} loop level —
    with [schedule(static,1)] adjacent columns of a row go to different
    threads, so the eight-doubles-per-line writes to [B\[i\]\[j\]]
    false-share heavily.  The paper's non-FS configuration uses chunk 64.

    The default grid is short and wide (18 × 30722): the parallel inner
    trip (30720) is divisible by [threads * chunk] for every measured team
    size, so static scheduling is perfectly balanced. *)

val source : ?rows:int -> ?cols:int -> unit -> string
val kernel : ?rows:int -> ?cols:int -> unit -> Kernel.t

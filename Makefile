.PHONY: all build verify bench bench-smoke serve-smoke fuzz-smoke fix-verify sched-smoke doc clean

all: build

build:
	dune build

# Tier-1 gate: full build + the whole alcotest/qcheck suite, then the
# lint self-check: clean kernels must pass, the racy fixture must fail,
# the parametric fixture must lint without -p and trip the FS gate.
# The adversarial exact-tier fixtures must get definite verdicts: their
# certified races gate the exit code, and even under --exact on no
# analysis/unknown or analysis/exact-budget finding may remain.
verify:
	dune build
	dune runtest
	./_build/default/bin/fsdetect.exe lint --no-fixits -k saxpy > /dev/null
	./_build/default/bin/fsdetect.exe lint --no-fixits -k linear_regression > /dev/null
	! ./_build/default/bin/fsdetect.exe lint --no-fixits test/fixtures/racy_stencil.c > /dev/null
	./_build/default/bin/fsdetect.exe lint --no-fixits test/fixtures/parametric_stride.c > /dev/null
	! ./_build/default/bin/fsdetect.exe lint --no-fixits --fail-on fs test/fixtures/parametric_stride.c > /dev/null
	./_build/default/bin/fsdetect.exe lint --no-fixits --fail-on never test/fixtures/racy_stencil.c > /dev/null
	! ./_build/default/bin/fsdetect.exe lint --no-fixits test/fixtures/coupled_subscript.c > /dev/null 2>&1
	! ./_build/default/bin/fsdetect.exe lint --no-fixits test/fixtures/divided_bound.c > /dev/null 2>&1
	! ./_build/default/bin/fsdetect.exe lint --no-fixits --fail-on never --exact on test/fixtures/coupled_subscript.c 2>&1 | grep 'analysis/'
	! ./_build/default/bin/fsdetect.exe lint --no-fixits --fail-on never --exact on test/fixtures/divided_bound.c 2>&1 | grep 'analysis/'
	./_build/default/bin/fsdetect.exe --version | grep -q '+arch\.'
	./_build/default/bin/fsdetect.exe lint --fail-on never --cost-model analytic -k heat | grep -q 'cost: Total_c'
	./_build/default/bin/fsdetect.exe analyze --cost-model analytic --format json -k heat | grep -q '"costModel": "analytic"'
	$(MAKE) serve-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) fix-verify
	$(MAKE) sched-smoke

# Analytic-vs-simulator accuracy gate: every registry kernel's reuse
# prediction must land inside the per-kernel tolerances pinned in
# test/test_reuse.ml, and the analytic lint path must make zero engine
# evaluations.  (Also part of `dune runtest`; exposed as its own target
# so CI can run and report it separately.)
cost-model-accuracy: build
	./_build/default/test/test_reuse.exe

# End-to-end smoke of the analysis service: one `fsdetect serve`
# process gets the same mixed batch (lint + explain over every registry
# kernel) twice; the warm pass must return byte-identical responses and
# be at least 5x faster than the cold one, or the runner exits nonzero.
serve-smoke: build
	./_build/default/test/serve_runner.exe --smoke \
	  ./_build/default/bin/fsdetect.exe

# Sixty seconds of seeded differential fuzzing: replay the committed
# corpus, then push freshly generated nests through the oracle matrix
# until the budget runs out.  Deterministic per seed, so a CI failure
# reproduces locally with the seed/case printed in the counterexample.
fuzz-smoke: build
	./_build/default/bin/fsdetect.exe fuzz --seed 42 --count 1000000 \
	  --time-budget 60 --corpus test/corpus --out fuzz-failures

# The verified-fix gate: every registry and micro-pattern kernel with
# attributed false sharing must get a materialized transformed program
# that removes >= 90% of it with no analytic cost regression and a
# simulator-confirmed drop in false invalidation misses; clean kernels
# must report an explicitly empty plan.  Then a short seeded mining run:
# generated nests whose materialized fix underdelivers are promoted into
# test/corpus as content-addressed fix-<digest>.c regression seeds.
fix-verify: build
	./_build/default/test/fix_verify.exe
	./_build/default/bin/fsdetect.exe fuzz --seed 7 --count 400 \
	  --promote test/corpus --out fuzz-failures

# The seeded-schedule tier: the statistical test binary (replay
# determinism, per-seed cross-engine equality on both engines, static
# equivalence, the 32-seed Cole-Ramachandran steal bound on every
# registry kernel), then a distributional lint over K=8 seeds on each
# engine-facing schedule kind as a CLI-level check.
sched-smoke: build
	./_build/default/test/test_sched.exe
	./_build/default/bin/fsdetect.exe lint --no-fixits --fail-on never \
	  -k heat --schedule dynamic --seeds 8 | grep -q 'fs-dist: mean'
	./_build/default/bin/fsdetect.exe lint --no-fixits --fail-on never \
	  -k heat --schedule ws,2 --seeds 8 | grep -q 'steal(s)/seed'

# API reference via odoc.  The root `dune` file promotes every odoc
# comment problem (broken {!reference}, bad markup, missing @param) to
# a build error, so doc rot fails this target — and the docs CI job
# that runs it.  All libraries here are private, hence @doc-private.
# Skips with a notice when odoc is not installed so `make doc` stays
# runnable in minimal toolchain containers.
doc:
	@if command -v odoc > /dev/null 2>&1 || \
	  [ -x "$$(opam var bin 2>/dev/null)/odoc" ]; then \
	  dune build @doc-private && \
	  echo "API docs: _build/default/_doc/_html/index.html"; \
	else \
	  echo "make doc: odoc not installed, skipping (CI enforces this)"; \
	fi

# Full reproduction harness (all figures/tables + bechamel micros).
bench: build
	./_build/default/bench/main.exe

# Quick smoke of the bench pipelines (small instances, no micros),
# with a wall-clock line; also leaves BENCH.json behind.
bench-smoke: build
	@start=$$(date +%s.%N); \
	./_build/default/bench/main.exe --quick --no-micro; \
	end=$$(date +%s.%N); \
	awk -v s="$$start" -v e="$$end" \
	  'BEGIN { printf "bench-smoke wall-clock: %.2fs\n", e - s }'

clean:
	dune clean

(* fsdetect — compile-time false-sharing analysis for OpenMP loop nests.

   Subcommands:
     analyze    run the FS cost model on a mini-C file or a bundled kernel
     lint       static race / false-sharing diagnostics with fix-its
     explain    attribute each FS case to its references/line/thread pair
     simulate   execute on the simulated multicore and report measured times
     advise     chunk-size / padding advice to eliminate false sharing
     eliminate  rewrite the program (padding / spreading) and print it
     compare    model vs predictor vs runtime trace detector, per chunk
     fuzz       differential fuzzing of the four analysis paths
     kernels    list bundled kernels
     dump       parse a file and dump the program and its loop nests *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type source = From_file of string | From_kernel of Kernels.Kernel.t

let load ~file ~kernel =
  match (file, kernel) with
  | Some f, None -> Ok (From_file f)
  | None, Some k -> (
      match Kernels.Registry.find k with
      | Some kern -> Ok (From_kernel kern)
      | None ->
          Error
            (Printf.sprintf "unknown kernel %S (try: %s)" k
               (String.concat ", " (Kernels.Registry.names ()))))
  | Some _, Some _ -> Error "give either FILE or --kernel, not both"
  | None, None -> Error "give a FILE or --kernel NAME"

let checked_of = function
  | From_file f ->
      Minic.Typecheck.check_program (Minic.Parser.parse_program (read_file f))
  | From_kernel k -> Kernels.Kernel.parse k

let func_of src func =
  match (func, src) with
  | Some f, _ -> Ok f
  | None, From_kernel k -> Ok k.Kernels.Kernel.func
  | None, From_file f -> (
      let checked = checked_of (From_file f) in
      match Loopir.Lower.find_parallel_functions checked.Minic.Typecheck.prog
      with
      | [ one ] -> Ok one
      | [] -> Error "no function with an omp parallel for; use --func"
      | several ->
          Error
            (Printf.sprintf "several parallel functions (%s); use --func"
               (String.concat ", " several)))

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Mini-C source file to analyze.")

let kernel_arg =
  Arg.(value & opt (some string) None
       & info [ "kernel"; "k" ] ~docv:"NAME" ~doc:"Use a bundled kernel.")

let func_arg =
  Arg.(value & opt (some string) None
       & info [ "func"; "f" ] ~docv:"FUNC" ~doc:"Kernel function name.")

let threads_arg =
  Arg.(value & opt int 8
       & info [ "threads"; "t" ] ~docv:"N" ~doc:"OpenMP team size.")

let wrap f = (try f () with
  | Minic.Parser.Error (m, l) ->
      Printf.eprintf "parse error (line %d): %s\n" l m; exit 1
  | Minic.Lexer.Error (m, l) ->
      Printf.eprintf "lex error (line %d): %s\n" l m; exit 1
  | Minic.Preproc.Error (m, l) ->
      Printf.eprintf "preprocessor error (line %d): %s\n" l m; exit 1
  | Minic.Typecheck.Type_error m ->
      Printf.eprintf "type error: %s\n" m; exit 1
  | Loopir.Lower.Lower_error m ->
      Printf.eprintf "analysis error: %s\n" m; exit 1
  | Loopir.Expr_eval.Unbound v ->
      Printf.eprintf
        "analysis error: unbound identifier '%s' (bind it with -p %s=VAL)\n" v
        v;
      exit 1
  | Sys_error m -> Printf.eprintf "%s\n" m; exit 1)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let analyze file kernel func threads fs_chunk nfs_chunk predict contention =
  wrap @@ fun () ->
  match load ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok src -> (
      match func_of src func with
      | Error e -> Printf.eprintf "%s\n" e; exit 1
      | Ok func ->
          let checked = checked_of src in
          let fs_chunk, nfs_chunk =
            match src with
            | From_kernel k ->
                ( Option.value ~default:k.Kernels.Kernel.fs_chunk fs_chunk,
                  Option.value ~default:k.Kernels.Kernel.nfs_chunk nfs_chunk )
            | From_file _ ->
                ( Option.value ~default:1 fs_chunk,
                  Option.value ~default:16 nfs_chunk )
          in
          let nest =
            Loopir.Lower.lower checked ~func
              ~params:[ ("num_threads", threads) ]
          in
          Format.printf "%a@." Loopir.Loop_nest.pp nest;
          let mode =
            match predict with
            | Some runs -> Fsmodel.Overhead_percent.Predicted runs
            | None -> Fsmodel.Overhead_percent.Full
          in
          let a =
            Fsmodel.Overhead_percent.analyze ~mode ~contention ~threads
              ~fs_chunk ~nfs_chunk ~func checked
          in
          Format.printf "%a@.%a@." Fsmodel.Overhead_percent.pp a
            Costmodel.Total_cost.pp a.Fsmodel.Overhead_percent.breakdown)

let analyze_cmd =
  let fs_chunk =
    Arg.(value & opt (some int) None
         & info [ "fs-chunk" ] ~docv:"C" ~doc:"FS-prone chunk size.")
  in
  let nfs_chunk =
    Arg.(value & opt (some int) None
         & info [ "nfs-chunk" ] ~docv:"C" ~doc:"Optimized chunk size.")
  in
  let predict =
    Arg.(value & opt (some int) None
         & info [ "predict" ] ~docv:"RUNS"
             ~doc:"Use the linear-regression predictor over RUNS chunk runs.")
  in
  let contention =
    Arg.(value & flag
         & info [ "contention" ]
             ~doc:"Include the shared-cache/bandwidth contention extension \
                   in the Eq. 1 total.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the compile-time FS cost model")
    Term.(const analyze $ file_arg $ kernel_arg $ func_arg $ threads_arg
          $ fs_chunk $ nfs_chunk $ predict $ contention)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint file kernel threads chunk json no_fixits params fail_on =
  wrap @@ fun () ->
  match load ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok src ->
      let checked = checked_of src in
      let uri =
        match src with
        | From_file f -> f
        | From_kernel k -> "kernel:" ^ k.Kernels.Kernel.name
      in
      let opts =
        {
          Analysis.Lint.default_options with
          threads;
          chunk;
          fixits = not no_fixits;
          params;
        }
      in
      let report = Analysis.Lint.run ~opts ~uri checked in
      if json then
        print_string (Analysis.Json.to_string (Analysis.Diag.to_json report))
      else print_string (Analysis.Diag.to_text report);
      let fail =
        match fail_on with
        | `Never -> false
        | `Race -> Analysis.Diag.error_count report > 0
        | `Fs ->
            Analysis.Diag.error_count report > 0
            || List.exists
                 (fun (f : Analysis.Diag.finding) ->
                   f.Analysis.Diag.rule = "fs/line-conflict"
                   && f.Analysis.Diag.severity <> Analysis.Diag.Info)
                 report.Analysis.Diag.findings
      in
      if fail then exit 1

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit a SARIF-shaped JSON report.")
  in
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "chunk"; "c" ] ~docv:"C"
             ~doc:"Schedule chunk-size override for the cost model.")
  in
  let no_fixits =
    Arg.(value & flag
         & info [ "no-fixits" ] ~doc:"Skip advisor-based fix-it search.")
  in
  let params =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "param"; "p" ] ~docv:"NAME=VAL"
             ~doc:
               "Bind an identifier appearing in loop bounds (repeatable). \
                Unbound identifiers are analyzed symbolically instead.")
  in
  let fail_on =
    Arg.(value
         & opt (enum [ ("race", `Race); ("fs", `Fs); ("never", `Never) ])
             `Race
         & info [ "fail-on" ] ~docv:"WHEN"
             ~doc:
               "When to exit non-zero: $(b,race) (default) on any \
                error-severity finding, $(b,fs) also on any false-sharing \
                warning, $(b,never) always exit 0.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static data-race and false-sharing diagnostics over every omp \
          parallel for nest (exit 1 per $(b,--fail-on), default: on any \
          error-severity finding)")
    Term.(const lint $ file_arg $ kernel_arg $ threads_arg $ chunk $ json
          $ no_fixits $ params $ fail_on)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain file kernel func threads chunk params engine format top trace_cap
    out =
  wrap @@ fun () ->
  match load ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok src -> (
      match func_of src func with
      | Error e -> Printf.eprintf "%s\n" e; exit 1
      | Ok func ->
          let checked = checked_of src in
          let uri, source =
            match src with
            | From_file f -> (f, read_file f)
            | From_kernel k ->
                ("kernel:" ^ k.Kernels.Kernel.name, k.Kernels.Kernel.source)
          in
          let params = ("num_threads", threads) :: params in
          let nest = Loopir.Lower.lower checked ~func ~params in
          let cfg =
            { (Fsmodel.Model.default_config ~threads ()) with chunk; params }
          in
          let a =
            Explain.analyze ~engine ?trace_cap ~uri ~func cfg ~nest ~checked
          in
          let emit s =
            match out with
            | None -> print_string s
            | Some path ->
                let oc = open_out_bin path in
                Fun.protect
                  ~finally:(fun () -> close_out_noerr oc)
                  (fun () -> output_string oc s)
          in
          (match format with
          | `Text -> emit (Explain.to_text ~source ~top a)
          | `Heatmap -> emit (Explain.heatmap a)
          | `Trace -> emit (Analysis.Json.to_string (Explain.trace_json a)));
          if not (Explain.conservation_ok a) then begin
            Printf.eprintf
              "internal error: attribution does not sum back to the engine \
               count\n";
            exit 3
          end)

let explain_cmd =
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "chunk"; "c" ] ~docv:"C"
             ~doc:"Schedule chunk-size override for the cost model.")
  in
  let params =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "param"; "p" ] ~docv:"NAME=VAL"
             ~doc:"Bind an identifier appearing in loop bounds (repeatable).")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("fast", `Fast); ("reference", `Reference) ]) `Fast
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Engine to attribute: $(b,fast) (default) or \
                   $(b,reference).  Both record identical provenance; the \
                   option exists for cross-checking.")
  in
  let format =
    Arg.(value
         & opt
             (enum [ ("text", `Text); ("heatmap", `Heatmap); ("trace", `Trace) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Renderer: $(b,text) (annotated source + top reference \
                   pairs, default), $(b,heatmap) (ASCII cache-line x thread \
                   map), or $(b,trace) (Chrome trace_event JSON for \
                   Perfetto / chrome://tracing).")
  in
  let top =
    Arg.(value & opt int 3
         & info [ "top" ] ~docv:"N"
             ~doc:"Reference pairs to show in the text report.")
  in
  let trace_cap =
    Arg.(value & opt (some int) None
         & info [ "trace-cap" ] ~docv:"N"
             ~doc:"Per-event ring capacity for the trace export (default \
                   65536; aggregates always cover every case).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the report to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute every false-sharing case the cost model counts to its \
          (writer reference, victim reference, cache line, thread pair) \
          provenance, and render the aggregation as an annotated-source \
          report, a heatmap, or a loadable trace")
    Term.(const explain $ file_arg $ kernel_arg $ func_arg $ threads_arg
          $ chunk $ params $ engine $ format $ top $ trace_cap $ out)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate kernel threads chunk window =
  wrap @@ fun () ->
  match load ~file:None ~kernel:(Some kernel) with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok (From_kernel k) ->
      let m =
        Execsim.Run.measure ?chunk ~interleave_window:window ~threads k
      in
      Format.printf "%a@." Execsim.Run.pp_measurement m
  | Ok (From_file _) -> assert false

let simulate_cmd =
  let kernel_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KERNEL" ~doc:"Bundled kernel name.")
  in
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "chunk"; "c" ] ~docv:"C" ~doc:"Chunk-size override.")
  in
  let window =
    Arg.(value & opt int 4
         & info [ "window" ] ~docv:"W" ~doc:"Thread interleave window.")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute a kernel on the simulated coherent multicore")
    Term.(const simulate $ kernel_pos $ threads_arg $ chunk $ window)

(* ------------------------------------------------------------------ *)
(* advise                                                              *)
(* ------------------------------------------------------------------ *)

let advise file kernel func threads =
  wrap @@ fun () ->
  match load ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok src -> (
      match func_of src func with
      | Error e -> Printf.eprintf "%s\n" e; exit 1
      | Ok func ->
          let checked = checked_of src in
          let a = Fsmodel.Advisor.advise ~threads ~func checked in
          Format.printf "%a@." Fsmodel.Advisor.pp a)

let advise_cmd =
  Cmd.v
    (Cmd.info "advise" ~doc:"Chunk-size and padding advice to eliminate FS")
    Term.(const advise $ file_arg $ kernel_arg $ func_arg $ threads_arg)

(* ------------------------------------------------------------------ *)
(* eliminate                                                           *)
(* ------------------------------------------------------------------ *)

let eliminate file kernel func threads =
  wrap @@ fun () ->
  match load ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok src -> (
      match func_of src func with
      | Error e -> Printf.eprintf "%s\n" e; exit 1
      | Ok func -> (
          let checked = checked_of src in
          match Fsmodel.Eliminate.eliminate ~threads ~func checked with
          | after, plan ->
              Format.printf "/* fsdetect: %a*/@.%s"
                Fsmodel.Eliminate.pp_plan plan
                (Minic.Pretty.program_to_string after.Minic.Typecheck.prog)
          | exception Fsmodel.Eliminate.Unsupported m ->
              Printf.eprintf "cannot eliminate: %s\n" m;
              exit 1))

let eliminate_cmd =
  Cmd.v
    (Cmd.info "eliminate"
       ~doc:
         "Rewrite the program to remove false sharing (struct padding / \
          element spreading) and print the result")
    Term.(const eliminate $ file_arg $ kernel_arg $ func_arg $ threads_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_detectors kernel threads chunks =
  wrap @@ fun () ->
  match load ~file:None ~kernel:(Some kernel) with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok (From_kernel k) ->
      let chunks = match chunks with [] -> [ 1; 2; 4; 8; 16; 32 ] | l -> l in
      let c = Baseline.Compare.run ~chunks ~threads k in
      Format.printf "%a@." Baseline.Compare.pp c
  | Ok (From_file _) -> assert false

let compare_cmd =
  let kernel_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KERNEL" ~doc:"Bundled kernel name.")
  in
  let chunks =
    Arg.(value & opt (list int) []
         & info [ "chunks" ] ~docv:"C1,C2,..."
             ~doc:"Chunk sizes to sweep (default 1,2,4,8,16,32).")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Sweep chunk sizes with the compile-time model, the predictor and \
          a runtime trace-based detector, and report their agreement")
    Term.(const compare_detectors $ kernel_pos $ threads_arg $ chunks)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz seed count time_budget jobs out corpus inject max_failures quiet =
  wrap @@ fun () ->
  let mutate =
    match inject with
    | None -> None
    | Some name -> (
        match Fuzz.Oracle.mutation_of_string name with
        | Some _ as m -> m
        | None ->
            Printf.eprintf "unknown fault %S (one of: %s)\n" name
              (String.concat ", " Fuzz.Oracle.mutation_names);
            exit 2)
  in
  let cfg =
    {
      Fuzz.Driver.default with
      seed;
      count;
      time_budget;
      jobs;
      mutate;
      out_dir = Some out;
      corpus;
      max_failures;
    }
  in
  let progress = if quiet then fun _ -> () else Printf.eprintf "%s\n%!" in
  let s = Fuzz.Driver.run ~progress cfg in
  print_string (Fuzz.Driver.summary_to_string s);
  if s.Fuzz.Driver.failures <> [] then exit 1

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0
         & info [ "seed"; "s" ] ~docv:"N" ~doc:"PRNG seed for the run.")
  in
  let count =
    Arg.(value & opt int 1000
         & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of cases to generate.")
  in
  let time_budget =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECONDS"
             ~doc:"Stop generating new cases after this many seconds.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains (default: recommended for this machine). \
                   The generated corpus is identical for any job count.")
  in
  let out =
    Arg.(value & opt string "fuzz-failures"
         & info [ "out"; "o" ] ~docv:"DIR"
             ~doc:"Directory for shrunk counterexamples.")
  in
  let corpus =
    Arg.(value & opt (some dir) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Replay every .c file of DIR through the oracle matrix \
                   before generating random cases.")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"Harness self-test: inject a known fault (one of \
                   $(b,fast), $(b,closed), $(b,depend), $(b,sym)) and \
                   expect the matrix to catch it.")
  in
  let max_failures =
    Arg.(value & opt int 1
         & info [ "max-failures" ] ~docv:"N"
             ~doc:"Keep fuzzing until N distinct failures were shrunk.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random OpenMP loop nests and \
          cross-check the reference engine, the fast engine, the \
          closed-form and symbolic estimators, and the dependence \
          analyzer against each other and against brute force (exit 1 \
          on any disagreement, with a shrunk counterexample written to \
          $(b,--out))")
    Term.(const fuzz $ seed $ count $ time_budget $ jobs $ out $ corpus
          $ inject $ max_failures $ quiet)

(* ------------------------------------------------------------------ *)
(* kernels, dump                                                       *)
(* ------------------------------------------------------------------ *)

let kernels () =
  List.iter
    (fun k ->
      Printf.printf "%-18s %s (func %s, chunks %d vs %d)\n"
        k.Kernels.Kernel.name k.Kernels.Kernel.description
        k.Kernels.Kernel.func k.Kernels.Kernel.fs_chunk
        k.Kernels.Kernel.nfs_chunk)
    (Kernels.Registry.all ())

let kernels_cmd =
  Cmd.v (Cmd.info "kernels" ~doc:"List bundled kernels")
    Term.(const kernels $ const ())

let dump file kernel threads =
  wrap @@ fun () ->
  match load ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok src ->
      let checked = checked_of src in
      Format.printf "%s@."
        (Minic.Pretty.program_to_string checked.Minic.Typecheck.prog);
      List.iter
        (fun f ->
          List.iter
            (fun nest -> Format.printf "%a@." Loopir.Loop_nest.pp nest)
            (Loopir.Lower.lower_all checked ~func:f
               ~params:[ ("num_threads", threads) ]))
        (Loopir.Lower.find_parallel_functions checked.Minic.Typecheck.prog)

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"Parse and dump a program and its loop nests")
    Term.(const dump $ file_arg $ kernel_arg $ threads_arg)

let () =
  let info =
    Cmd.info "fsdetect" ~version:"1.0.0"
      ~doc:"Compile-time detection of false sharing via loop cost modeling"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; lint_cmd; explain_cmd; simulate_cmd; advise_cmd;
            eliminate_cmd; compare_cmd; fuzz_cmd; kernels_cmd; dump_cmd ]))

(* fsdetect — compile-time false-sharing analysis for OpenMP loop nests.

   Subcommands:
     analyze    run the FS cost model on a mini-C file or a bundled kernel
     lint       static race / false-sharing diagnostics with fix-its
     explain    attribute each FS case to its references/line/thread pair
     simulate   execute on the simulated multicore and report measured times
     advise     chunk-size / padding advice to eliminate false sharing
     eliminate  rewrite the program (padding / spreading) and print it
     fix        materialize the advised fix and verify it by re-analysis
     compare    model vs predictor vs runtime trace detector, per chunk
     fuzz       differential fuzzing of the four analysis paths
     serve      long-running JSON-RPC analysis service with a memo cache
     kernels    list bundled kernels
     dump       parse a file and dump the program and its loop nests

   Every analysis subcommand is a thin wrapper over [Service.Api]: the
   CLI builds a typed request, executes it, prints the payload's stdout/
   stderr bytes and exits with its code.  [fsdetect serve] runs the same
   requests against a long-lived store, so a warm serve response is
   byte-identical to the one-shot CLI run. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of ~file ~kernel =
  match (file, kernel) with
  | Some f, None -> Ok (Service.Req.Text { name = f; content = read_file f })
  | None, Some k -> Ok (Service.Req.Kernel k)
  | Some _, Some _ -> Error "give either FILE or --kernel, not both"
  | None, None -> Error "give a FILE or --kernel NAME"

let emit_payload (p : Service.Api.payload) =
  print_string p.Service.Api.output;
  prerr_string p.Service.Api.err;
  if p.Service.Api.code <> 0 then exit p.Service.Api.code

let exec req = emit_payload (Service.Api.exec (Service.Api.create_store ()) req)

(* ------------------------------------------------------------------ *)
(* Common options                                                      *)
(* ------------------------------------------------------------------ *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Mini-C source file to analyze.")

let kernel_arg =
  Arg.(value & opt (some string) None
       & info [ "kernel"; "k" ] ~docv:"NAME" ~doc:"Use a bundled kernel.")

let func_arg =
  Arg.(value & opt (some string) None
       & info [ "func"; "f" ] ~docv:"FUNC" ~doc:"Kernel function name.")

let threads_arg =
  Arg.(value & opt int 8
       & info [ "threads"; "t" ] ~docv:"N" ~doc:"OpenMP team size.")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j"; "domains" ] ~docv:"N"
           ~doc:"Worker domains (default: recommended for this machine). \
                 Results are identical for any job count.")

let exact_arg =
  Arg.(value
       & opt
           (enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ])
           `Auto
       & info [ "exact" ] ~docv:"MODE"
           ~doc:
             "Exact (Omega-test) dependence tier: $(b,auto) (default) runs \
              it and falls back to Banerjee silently on budget exhaustion, \
              $(b,on) additionally reports every fallback as a finding, \
              $(b,off) disables it.")

let exact_budget_arg =
  Arg.(value & opt int Analysis.Depend.default_exact_budget
       & info [ "exact-budget" ] ~docv:"N"
           ~doc:"Solver step allowance per reference pair for the exact \
                 dependence tier.")

let schedule_arg =
  Arg.(value & opt (some string) None
       & info [ "schedule" ] ~docv:"KIND[,C]"
           ~doc:
             "Schedule to analyze under: $(b,static)[,C] (the default \
              pragma path; C is a chunk override), $(b,dynamic)[,C], \
              $(b,guided)[,C] or $(b,ws)[,C] (randomized work stealing).  \
              Nondeterministic kinds are replayed once per seed and the \
              verdict becomes a distribution over $(b,--seeds) seeds.")

let seeds_arg =
  Arg.(value & opt int 8
       & info [ "seeds" ] ~docv:"K"
           ~doc:"Seed-set size for distribution-valued verdicts under a \
                 nondeterministic $(b,--schedule).")

(* --schedule/--seeds are validated by hand so a bad value exits 2 with
   an actionable message instead of cmdliner's generic conversion error.
   Returns (replayed kind, chunk override). *)
let sched_of_flags ~schedule ~seeds ~chunk =
  if seeds < 1 then begin
    Printf.eprintf "--seeds must be at least 1 (got %d)\n" seeds;
    exit 2
  end;
  match schedule with
  | None -> (None, chunk)
  | Some s -> (
      match Ompsched.Dispatch.of_string s with
      | Ok (`Kind k) -> (Some k, chunk)
      | Ok (`Static None) -> (None, chunk)
      | Ok (`Static (Some c)) ->
          if chunk <> None then begin
            Printf.eprintf
              "give --chunk or --schedule static,C, not both\n";
            exit 2
          end;
          (None, Some c)
      | Error m ->
          Printf.eprintf "--schedule: %s\n" m;
          exit 2)

let wrap f = (try f () with
  | Minic.Parser.Error (m, l) ->
      Printf.eprintf "parse error (line %d): %s\n" l m; exit 1
  | Minic.Lexer.Error (m, l) ->
      Printf.eprintf "lex error (line %d): %s\n" l m; exit 1
  | Minic.Preproc.Error (m, l) ->
      Printf.eprintf "preprocessor error (line %d): %s\n" l m; exit 1
  | Minic.Typecheck.Type_error m ->
      Printf.eprintf "type error: %s\n" m; exit 1
  | Loopir.Lower.Lower_error m ->
      Printf.eprintf "analysis error: %s\n" m; exit 1
  | Loopir.Expr_eval.Unbound v ->
      Printf.eprintf
        "analysis error: unbound identifier '%s' (bind it with -p %s=VAL)\n" v
        v;
      exit 1
  | Sys_error m -> Printf.eprintf "%s\n" m; exit 1)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let cost_model_arg =
  let open Cmdliner in
  Arg.(value
       & opt
           (enum [ ("sim", `Sim); ("analytic", `Analytic); ("both", `Both) ])
           `Sim
       & info [ "cost-model" ] ~docv:"MODEL"
           ~doc:
             "How to quantify and cost findings: $(b,sim) (default) uses \
              the lockstep engine where no closed form applies, \
              $(b,analytic) uses only the static reuse-distance model \
              (zero engine or simulator evaluations), $(b,both) reports \
              engine counts with the analytic Eq. 1 context attached.")

let analyze file kernel func threads fs_chunk nfs_chunk predict contention
    exact exact_budget cost_model format =
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      exec
        (Service.Req.v source
           (Service.Req.Analyze
              {
                func;
                threads;
                fs_chunk;
                nfs_chunk;
                predict;
                contention;
                exact;
                exact_budget;
                cost_model;
                json = (format = `Json);
              }))

let analyze_cmd =
  let fs_chunk =
    Arg.(value & opt (some int) None
         & info [ "fs-chunk" ] ~docv:"C" ~doc:"FS-prone chunk size.")
  in
  let nfs_chunk =
    Arg.(value & opt (some int) None
         & info [ "nfs-chunk" ] ~docv:"C" ~doc:"Optimized chunk size.")
  in
  let predict =
    Arg.(value & opt (some int) None
         & info [ "predict" ] ~docv:"RUNS"
             ~doc:"Use the linear-regression predictor over RUNS chunk runs.")
  in
  let contention =
    Arg.(value & flag
         & info [ "contention" ]
             ~doc:"Include the shared-cache/bandwidth contention extension \
                   in the Eq. 1 total.")
  in
  let format =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:
               "Output format: $(b,text) (default) or $(b,json) (one \
                structured document with the nest, dependence verdicts \
                and cost breakdown).")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the compile-time FS cost model")
    Term.(const analyze $ file_arg $ kernel_arg $ func_arg $ threads_arg
          $ fs_chunk $ nfs_chunk $ predict $ contention $ exact_arg
          $ exact_budget_arg $ cost_model_arg $ format)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

let lint file kernel threads chunk json no_fixits params fail_on exact
    exact_budget cost_model schedule seeds =
  let sched, chunk = sched_of_flags ~schedule ~seeds ~chunk in
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      exec
        (Service.Req.v source
           (Service.Req.Lint
              {
                threads;
                chunk;
                json;
                fixits = not no_fixits;
                params;
                fail_on;
                exact;
                exact_budget;
                cost_model;
                sched;
                seeds;
              }))

let lint_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit a SARIF-shaped JSON report.")
  in
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "chunk"; "c" ] ~docv:"C"
             ~doc:"Schedule chunk-size override for the cost model.")
  in
  let no_fixits =
    Arg.(value & flag
         & info [ "no-fixits" ] ~doc:"Skip advisor-based fix-it search.")
  in
  let params =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "param"; "p" ] ~docv:"NAME=VAL"
             ~doc:
               "Bind an identifier appearing in loop bounds (repeatable). \
                Unbound identifiers are analyzed symbolically instead.")
  in
  let fail_on =
    Arg.(value
         & opt
             (enum
                [ ("race", Service.Req.Race); ("fs", Service.Req.Fs);
                  ("never", Service.Req.Never) ])
             Service.Req.Race
         & info [ "fail-on" ] ~docv:"WHEN"
             ~doc:
               "When to exit non-zero: $(b,race) (default) on any \
                error-severity finding, $(b,fs) also on any false-sharing \
                warning, $(b,never) always exit 0.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static data-race and false-sharing diagnostics over every omp \
          parallel for nest (exit 1 per $(b,--fail-on), default: on any \
          error-severity finding)")
    Term.(const lint $ file_arg $ kernel_arg $ threads_arg $ chunk $ json
          $ no_fixits $ params $ fail_on $ exact_arg $ exact_budget_arg
          $ cost_model_arg $ schedule_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain file kernel func threads chunk params engine format top trace_cap
    out schedule seeds =
  let sched, chunk = sched_of_flags ~schedule ~seeds ~chunk in
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      let p =
        Service.Api.exec
          (Service.Api.create_store ())
          (Service.Req.v source
             (Service.Req.Explain
                { func; threads; chunk; params; engine; format; top;
                  trace_cap; sched; seeds }))
      in
      (* The report goes to --out only when one was produced (code 0, or
         3: report emitted but conservation failed) — analysis errors
         must not create the file, exactly as the one-shot path. *)
      (match out with
      | None -> print_string p.Service.Api.output
      | Some path when p.Service.Api.code = 0 || p.Service.Api.code = 3 ->
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc p.Service.Api.output)
      | Some _ -> ());
      prerr_string p.Service.Api.err;
      if p.Service.Api.code <> 0 then exit p.Service.Api.code

let explain_cmd =
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "chunk"; "c" ] ~docv:"C"
             ~doc:"Schedule chunk-size override for the cost model.")
  in
  let params =
    Arg.(value & opt_all (pair ~sep:'=' string int) []
         & info [ "param"; "p" ] ~docv:"NAME=VAL"
             ~doc:"Bind an identifier appearing in loop bounds (repeatable).")
  in
  let engine =
    Arg.(value
         & opt (enum [ ("fast", `Fast); ("reference", `Reference) ]) `Fast
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Engine to attribute: $(b,fast) (default) or \
                   $(b,reference).  Both record identical provenance; the \
                   option exists for cross-checking.")
  in
  let format =
    Arg.(value
         & opt
             (enum [ ("text", `Text); ("heatmap", `Heatmap); ("trace", `Trace) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Renderer: $(b,text) (annotated source + top reference \
                   pairs, default), $(b,heatmap) (ASCII cache-line x thread \
                   map), or $(b,trace) (Chrome trace_event JSON for \
                   Perfetto / chrome://tracing).")
  in
  let top =
    Arg.(value & opt int 3
         & info [ "top" ] ~docv:"N"
             ~doc:"Reference pairs to show in the text report.")
  in
  let trace_cap =
    Arg.(value & opt (some int) None
         & info [ "trace-cap" ] ~docv:"N"
             ~doc:"Per-event ring capacity for the trace export (default \
                   65536; aggregates always cover every case).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the report to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute every false-sharing case the cost model counts to its \
          (writer reference, victim reference, cache line, thread pair) \
          provenance, and render the aggregation as an annotated-source \
          report, a heatmap, or a loadable trace")
    Term.(const explain $ file_arg $ kernel_arg $ func_arg $ threads_arg
          $ chunk $ params $ engine $ format $ top $ trace_cap $ out
          $ schedule_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let kernel_or_die k =
  match Kernels.Registry.find k with
  | Some kern -> kern
  | None ->
      Printf.eprintf "unknown kernel %S (try: %s)\n" k
        (String.concat ", " (Kernels.Registry.names ()));
      exit 1

let simulate kernel threads chunk window schedule seed =
  let sched, chunk =
    match sched_of_flags ~schedule ~seeds:1 ~chunk with
    | Some k, chunk -> (Some (k, seed), chunk)
    | None, chunk -> (None, chunk)
  in
  wrap @@ fun () ->
  let k = kernel_or_die kernel in
  let m =
    Execsim.Run.measure ?chunk ?sched ~interleave_window:window ~threads k
  in
  Format.printf "%a@." Execsim.Run.pp_measurement m

let simulate_cmd =
  let kernel_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KERNEL" ~doc:"Bundled kernel name.")
  in
  let chunk =
    Arg.(value & opt (some int) None
         & info [ "chunk"; "c" ] ~docv:"C" ~doc:"Chunk-size override.")
  in
  let window =
    Arg.(value & opt int 4
         & info [ "window" ] ~docv:"W" ~doc:"Thread interleave window.")
  in
  let seed =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Replay seed for a nondeterministic $(b,--schedule).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute a kernel on the simulated coherent multicore")
    Term.(const simulate $ kernel_pos $ threads_arg $ chunk $ window
          $ schedule_arg $ seed)

(* ------------------------------------------------------------------ *)
(* advise                                                              *)
(* ------------------------------------------------------------------ *)

let advise file kernel func threads jobs =
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      exec
        (Service.Req.v source (Service.Req.Advise { func; threads; jobs }))

let advise_cmd =
  Cmd.v
    (Cmd.info "advise" ~doc:"Chunk-size and padding advice to eliminate FS")
    Term.(const advise $ file_arg $ kernel_arg $ func_arg $ threads_arg
          $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* eliminate                                                           *)
(* ------------------------------------------------------------------ *)

let eliminate file kernel func threads =
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      exec (Service.Req.v source (Service.Req.Eliminate { func; threads }))

let eliminate_cmd =
  Cmd.v
    (Cmd.info "eliminate"
       ~doc:
         "Rewrite the program to remove false sharing (struct padding / \
          element spreading) and print the result")
    Term.(const eliminate $ file_arg $ kernel_arg $ func_arg $ threads_arg)

(* ------------------------------------------------------------------ *)
(* fix                                                                 *)
(* ------------------------------------------------------------------ *)

let fix file kernel func threads jobs json =
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      exec
        (Service.Req.v source (Service.Req.Fix { func; threads; jobs; json }))

let fix_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the verdict as one JSON object (including the \
                   transformed source under $(b,transformedSource)).")
  in
  Cmd.v
    (Cmd.info "fix"
       ~doc:
         "Materialize the advised fix (padding / spreading / privatization \
          / chunk retuning) and verify it by re-analysis: re-run both \
          model engines, the dependence analysis and the analytic cost \
          model on the transformed program, and report the attributed-FS \
          removal, cost ratio and verdict followed by the transformed \
          source (exit 1 when the fix does not verify; a nest with no \
          attributed false sharing reports nothing to fix and exits 0)")
    Term.(const fix $ file_arg $ kernel_arg $ func_arg $ threads_arg
          $ jobs_arg $ json)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_detectors kernel threads chunks =
  wrap @@ fun () ->
  let k = kernel_or_die kernel in
  let chunks = match chunks with [] -> [ 1; 2; 4; 8; 16; 32 ] | l -> l in
  let c = Baseline.Compare.run ~chunks ~threads k in
  Format.printf "%a@." Baseline.Compare.pp c

let compare_cmd =
  let kernel_pos =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"KERNEL" ~doc:"Bundled kernel name.")
  in
  let chunks =
    Arg.(value & opt (list int) []
         & info [ "chunks" ] ~docv:"C1,C2,..."
             ~doc:"Chunk sizes to sweep (default 1,2,4,8,16,32).")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Sweep chunk sizes with the compile-time model, the predictor and \
          a runtime trace-based detector, and report their agreement")
    Term.(const compare_detectors $ kernel_pos $ threads_arg $ chunks)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let fuzz seed count time_budget jobs out corpus promote inject max_failures
    quiet =
  wrap @@ fun () ->
  let mutate =
    match inject with
    | None -> None
    | Some name -> (
        match Fuzz.Oracle.mutation_of_string name with
        | Some _ as m -> m
        | None ->
            Printf.eprintf "unknown fault %S (one of: %s)\n" name
              (String.concat ", " Fuzz.Oracle.mutation_names);
            exit 2)
  in
  let cfg =
    {
      Fuzz.Driver.default with
      seed;
      count;
      time_budget;
      jobs;
      mutate;
      out_dir = Some out;
      corpus;
      promote_dir = promote;
      max_failures;
    }
  in
  let progress = if quiet then fun _ -> () else Printf.eprintf "%s\n%!" in
  let s = Fuzz.Driver.run ~progress cfg in
  print_string (Fuzz.Driver.summary_to_string s);
  if s.Fuzz.Driver.failures <> [] then exit 1

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 0
         & info [ "seed"; "s" ] ~docv:"N" ~doc:"PRNG seed for the run.")
  in
  let count =
    Arg.(value & opt int 1000
         & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of cases to generate.")
  in
  let time_budget =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECONDS"
             ~doc:"Stop generating new cases after this many seconds.")
  in
  let out =
    Arg.(value & opt string "fuzz-failures"
         & info [ "out"; "o" ] ~docv:"DIR"
             ~doc:"Directory for shrunk counterexamples.")
  in
  let corpus =
    Arg.(value & opt (some dir) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Replay every .c file of DIR through the oracle matrix \
                   before generating random cases.")
  in
  let promote =
    Arg.(value & opt (some string) None
         & info [ "promote" ] ~docv:"DIR"
             ~doc:"Corpus mining: write any generated nest whose \
                   materialized fix underdelivers (fails the \
                   $(b,fix/verified) gate without being an oracle \
                   disagreement) to DIR under a content-addressed name, \
                   so the regression corpus grows from fuzzing runs.")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"Harness self-test: inject a known fault (one of \
                   $(b,fast), $(b,closed), $(b,depend), $(b,sym), \
                   $(b,fix), ...) and expect the matrix to catch it.")
  in
  let max_failures =
    Arg.(value & opt int 1
         & info [ "max-failures" ] ~docv:"N"
             ~doc:"Keep fuzzing until N distinct failures were shrunk.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random OpenMP loop nests and \
          cross-check the reference engine, the fast engine, the \
          closed-form and symbolic estimators, and the dependence \
          analyzer against each other and against brute force (exit 1 \
          on any disagreement, with a shrunk counterexample written to \
          $(b,--out))")
    Term.(const fuzz $ seed $ count $ time_budget $ jobs_arg $ out $ corpus
          $ promote $ inject $ max_failures $ quiet)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve jobs capacity = Service.Serve.run ?jobs ?capacity ()

let serve_cmd =
  let capacity =
    Arg.(value & opt (some int) None
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Memo-cache entry bound across all stages (default 1024); \
                   least-recently-used entries are evicted beyond it.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Analysis as a service: read newline-delimited JSON-RPC requests \
          from stdin, answer one response per line on stdout.  Analyses \
          share a content-addressed memo cache (parse / typecheck / loop IR \
          / response stages), so repeated or incrementally-edited requests \
          are answered from cache; $(b,batch) requests shard across \
          $(b,--jobs) worker domains and stream per-item results.  Methods: \
          analyze, lint, explain, advise, eliminate, fix, dump, batch, \
          ping, version, kernels, cache_stats, shutdown.")
    Term.(const serve $ jobs_arg $ capacity)

(* ------------------------------------------------------------------ *)
(* kernels, dump                                                       *)
(* ------------------------------------------------------------------ *)

let kernels () =
  let line k =
    Printf.printf "%-18s %s (func %s, chunks %d vs %d)\n"
      k.Kernels.Kernel.name k.Kernels.Kernel.description
      k.Kernels.Kernel.func k.Kernels.Kernel.fs_chunk
      k.Kernels.Kernel.nfs_chunk
  in
  List.iter line (Kernels.Registry.all ());
  Printf.printf "micro-patterns:\n";
  List.iter line (Kernels.Registry.micros ())

let kernels_cmd =
  Cmd.v (Cmd.info "kernels" ~doc:"List bundled kernels")
    Term.(const kernels $ const ())

let dump file kernel threads =
  wrap @@ fun () ->
  match source_of ~file ~kernel with
  | Error e -> Printf.eprintf "%s\n" e; exit 1
  | Ok source ->
      exec (Service.Req.v source (Service.Req.Dump { threads }))

let dump_cmd =
  Cmd.v (Cmd.info "dump" ~doc:"Parse and dump a program and its loop nests")
    Term.(const dump $ file_arg $ kernel_arg $ threads_arg)

let () =
  let info =
    Cmd.info "fsdetect" ~version:Service.Api.version_string
      ~doc:"Compile-time detection of false sharing via loop cost modeling"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; lint_cmd; explain_cmd; simulate_cmd; advise_cmd;
            eliminate_cmd; fix_cmd; compare_cmd; fuzz_cmd; serve_cmd;
            kernels_cmd; dump_cmd ]))

(* The full workflow the paper's §VI sketches, end to end: detect false
   sharing at compile time, transform the data layout to remove it, and
   confirm on the simulated machine that both the modeled count and the
   measured time improve — without touching the loop.

   Run with: dune exec examples/fix_false_sharing.exe *)

let measure_kernel name checked ~func ~init ~threads =
  (* package an already-transformed program for the measurement harness *)
  let kernel =
    {
      Kernels.Kernel.name;
      description = "";
      source = Minic.Pretty.program_to_string checked.Minic.Typecheck.prog;
      func;
      init_func = init;
      fs_chunk = 1;
      nfs_chunk = 8;
      pred_runs = 10;
      parametric = None;
    }
  in
  Execsim.Run.measure ~threads kernel

let () =
  let threads = 8 in
  let kernel = Kernels.Matvec.kernel ~rows:4800 ~cols:8 () in
  let checked = Kernels.Kernel.parse kernel in
  Format.printf
    "Matrix-vector product, %d simulated threads, schedule(static,1):@.@."
    threads;
  (* 1. detect *)
  let before =
    Fsmodel.Overhead_percent.analyze ~threads ~fs_chunk:1 ~nfs_chunk:8
      ~func:"matvec" checked
  in
  Format.printf "before: %a@." Fsmodel.Overhead_percent.pp before;
  let advice = Fsmodel.Advisor.advise ~threads ~func:"matvec" checked in
  List.iter
    (fun v ->
      Format.printf
        "        victim %s: %dB between neighbour threads' writes@."
        v.Fsmodel.Advisor.base v.Fsmodel.Advisor.parallel_stride)
    advice.Fsmodel.Advisor.victims;
  (* 2. transform *)
  let after_checked, plan =
    Fsmodel.Eliminate.eliminate ~threads ~func:"matvec" checked
  in
  Format.printf "@.transform: %a@." Fsmodel.Eliminate.pp_plan plan;
  (* 3. re-model *)
  let after =
    Fsmodel.Overhead_percent.analyze ~threads ~fs_chunk:1 ~nfs_chunk:8
      ~func:"matvec" after_checked
  in
  Format.printf "after:  %a@.@." Fsmodel.Overhead_percent.pp after;
  (* 4. confirm on the simulated machine *)
  let m_before =
    measure_kernel "matvec-before" checked ~func:"matvec" ~init:(Some "init")
      ~threads
  in
  let m_after =
    measure_kernel "matvec-after" after_checked ~func:"matvec"
      ~init:(Some "init") ~threads
  in
  Format.printf
    "simulated wall time: %.5f s -> %.5f s (%.1f%% faster)@.\
     simulated FS misses: %d -> %d@."
    m_before.Execsim.Run.seconds m_after.Execsim.Run.seconds
    (100.
    *. (m_before.Execsim.Run.seconds -. m_after.Execsim.Run.seconds)
    /. m_before.Execsim.Run.seconds)
    m_before.Execsim.Run.stats.Cachesim.Stats.coherence_false
    m_after.Execsim.Run.stats.Cachesim.Stats.coherence_false;
  (* 5. same numerical result *)
  let value checked =
    let it = Execsim.Interp.create ~threads checked in
    Execsim.Interp.exec it ~func:"init";
    Execsim.Interp.exec it ~func:"matvec";
    Execsim.Value.to_float
      (Execsim.Interp.read_global it "y"
         [ Execsim.Interp.Idx (match plan.Fsmodel.Eliminate.rewrites with
            | [ Fsmodel.Eliminate.Spread_array { factor; _ } ] -> 7 * factor
            | _ -> 7) ])
  in
  let v_after = value after_checked in
  let it = Execsim.Interp.create ~threads checked in
  Execsim.Interp.exec it ~func:"init";
  Execsim.Interp.exec it ~func:"matvec";
  let v_before =
    Execsim.Value.to_float
      (Execsim.Interp.read_global it "y" [ Execsim.Interp.Idx 7 ])
  in
  Format.printf "y[7] unchanged: %.6f = %.6f@." v_before v_after
